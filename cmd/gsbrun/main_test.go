package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// The tests in cmd/ re-execute the test binary as the command under test
// (TestMain dispatches to main when GSB_CLI_UNDER_TEST is set), so every
// exit path — flag validation, mode conflicts, usage messages — is
// exercised exactly as a user hits it, without a separate build step.

func TestMain(m *testing.M) {
	if os.Getenv("GSB_CLI_UNDER_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSelf executes this test binary as the CLI with args.
func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GSB_CLI_UNDER_TEST=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("exec: %v", err)
	}
	return out.String(), errb.String(), code
}

// TestGsbrunInvalidFlags: every invalid flag combination must exit
// non-zero with a diagnostic on stderr — never panic, never succeed.
func TestGsbrunInvalidFlags(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantMsg  string // substring of stderr
	}{
		{"n-too-small", []string{"-n", "1"}, 2, "need n >= 2"},
		{"crash-out-of-range", []string{"-crash", "1.5"}, 2, "outside [0, 1]"},
		{"explore-crash-out-of-range", []string{"-explore", "-crash", "1.5"}, 1, "CrashProb"},
		{"sample-conflicts-explore", []string{"-sample", "10", "-explore"}, 2, "conflicts"},
		{"sample-conflicts-por", []string{"-sample", "10", "-por"}, 2, "conflicts"},
		{"pct-depth-without-sample", []string{"-pct-depth", "3"}, 2, "-pct-depth needs -sample"},
		{"unknown-protocol", []string{"-protocol", "bogus"}, 1, `unknown protocol "bogus"`},
		{"undefined-flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"negative-maxruns", []string{"-explore", "-maxruns", "-5"}, 1, "negative"},
		{"unknown-model", []string{"-model", "bogus"}, 2, `unknown memory model "bogus" (registered: atomic, regular, safe, stale-snapshot)`},
		{"unknown-adversary", []string{"-adversary", "bogus", "-explore", "-crash", "0.1", "-runs", "10"}, 2, `unknown adversary "bogus" (registered: uniform-crash, t-resilient, adaptive)`},
		{"adversary-without-crash-sweep", []string{"-adversary", "t-resilient"}, 2, "-adversary selects a crash-sweep strategy"},
		{"adversary-with-sample", []string{"-adversary", "t-resilient", "-sample", "10"}, 2, "-adversary selects a crash-sweep strategy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runSelf(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("args %v: exit %d, want %d\nstdout: %s\nstderr: %s", tc.args, code, tc.wantCode, stdout, stderr)
			}
			if !strings.Contains(stderr, tc.wantMsg) {
				t.Errorf("args %v: stderr %q does not mention %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

// TestGsbrunJSONSchema: -json records carry the versioned schema field
// downstream consumers key on, in every output mode.
func TestGsbrunJSONSchema(t *testing.T) {
	cases := [][]string{
		{"-json", "-n", "3", "-protocol", "renaming"},                  // seeded run
		{"-json", "-n", "2", "-protocol", "renaming", "-explore"},      // exhaustive
		{"-json", "-n", "3", "-protocol", "renaming", "-sample", "20"}, // sampling
	}
	for _, args := range cases {
		stdout, stderr, code := runSelf(t, args...)
		if code != 0 {
			t.Fatalf("args %v: exit %d\nstderr: %s", args, code, stderr)
		}
		var rec map[string]any
		line := strings.SplitN(strings.TrimSpace(stdout), "\n", 2)[0]
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("args %v: output is not JSON: %v\n%s", args, err, stdout)
		}
		if rec["schema"] != "gsbrun/v1" {
			t.Errorf("args %v: schema %v, want gsbrun/v1", args, rec["schema"])
		}
		if rec["ok"] != true {
			t.Errorf("args %v: record not ok: %v", args, rec)
		}
	}
}

// TestGsbrunModelAdversaryRecord: -model and -adversary thread into the
// engine and are echoed in the JSON record; the default names are
// normalized away (omitempty), so default records are byte-identical to
// pre-registry ones.
func TestGsbrunModelAdversaryRecord(t *testing.T) {
	cases := []struct {
		args          []string
		model, adv    any // expected record fields (nil = absent)
		wantSchedules bool
	}{
		{[]string{"-json", "-n", "3", "-protocol", "renaming", "-model", "regular"}, "regular", nil, false},
		{[]string{"-json", "-n", "2", "-protocol", "renaming", "-explore", "-model", "stale-snapshot"}, "stale-snapshot", nil, true},
		{[]string{"-json", "-n", "3", "-protocol", "renaming", "-explore", "-crash", "0.1", "-runs", "30", "-adversary", "adaptive"}, nil, "adaptive", true},
		{[]string{"-json", "-n", "3", "-protocol", "renaming", "-model", "atomic"}, nil, nil, false}, // explicit default normalizes away
	}
	for _, tc := range cases {
		stdout, stderr, code := runSelf(t, tc.args...)
		if code != 0 {
			t.Fatalf("args %v: exit %d\nstderr: %s", tc.args, code, stderr)
		}
		var rec map[string]any
		line := strings.SplitN(strings.TrimSpace(stdout), "\n", 2)[0]
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("args %v: output is not JSON: %v\n%s", tc.args, err, stdout)
		}
		if rec["model"] != tc.model {
			t.Errorf("args %v: model = %v, want %v", tc.args, rec["model"], tc.model)
		}
		if rec["adversary"] != tc.adv {
			t.Errorf("args %v: adversary = %v, want %v", tc.args, rec["adversary"], tc.adv)
		}
		if tc.wantSchedules && rec["schedules"] == nil {
			t.Errorf("args %v: no schedules in record: %v", tc.args, rec)
		}
	}
}
