// Command gsbrun executes one of the repository's wait-free protocols
// under a seeded adversarial scheduler and prints the run: the decided
// output vector, crash pattern, step counts and verification verdict.
// With -explore it instead model-checks the protocol over every
// failure-free schedule (or a randomized crash sweep when -crash > 0)
// using the parallel exploration engine; with -sample it statistically
// samples the schedule space — the mode for instances whose tree is
// beyond even partial-order-reduced exhaustion — and reports
// distinct-trace-class coverage.
//
// Usage:
//
//	gsbrun [-protocol slot-renaming] [-n 6] [-seed 1] [-crash 0.02] [-runs 1]
//	gsbrun -explore [-por] [-workers 8] [-maxruns 1000000] [-protocol slot-renaming] [-n 4]
//	gsbrun -sample 10000 [-pct-depth 3] [-workers 8] [-protocol slot-renaming] [-n 8]
//	gsbrun -json ...          # machine-readable NDJSON records on stdout
//
// -por enables partial-order reduction: the exploration executes one
// schedule per equivalence class of commuting shared-memory steps (ops on
// distinct objects, and read-only pairs on the same object, commute)
// instead of every interleaving, with identical verdicts.
//
// -sample N executes N seeded runs drawn by a uniform random walk over
// the pending set; -pct-depth d switches the sampler to PCT
// (probabilistic concurrency testing: random priorities plus d-1 seeded
// priority-change points, detecting a depth-d bug with probability >=
// 1/(n*k^(d-1)) per run). Batches are reproducible from -seed at any
// worker count, and a failing run is reported with a derived seed that
// replays it.
//
// -model selects the memory model mediating register and snapshot
// semantics (atomic, regular, safe, stale-snapshot; docs/models.md) and
// applies in every mode; -adversary selects the crash-sweep strategy
// (uniform-crash, t-resilient, adaptive) and needs -explore -crash > 0.
// Unknown names are usage errors listing the registered set.
//
// Protocols:
//
//	renaming       snapshot-based adaptive (2n-1)-renaming
//	grid           Moir-Anderson splitter-grid renaming (n(n+1)/2 names)
//	slot-renaming  Figure 2: (n+1)-renaming from an (n-1)-slot object
//	wsb            WSB from a (2n-2)-renaming oracle
//	renaming-wsb   (2n-2)-renaming from a WSB oracle
//	election       election from perfect renaming (TAS row)
//	universal      <n,3,1,n>-GSB via Theorem 8 from perfect renaming
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"repro"
)

// recordSchema versions the -json record format, so downstream consumers
// (the bench compare gate, campaign tooling, dashboards) can detect
// format drift instead of misparsing silently. Bump on any incompatible
// field change.
const recordSchema = "gsbrun/v1"

// record is the machine-readable result of one gsbrun invocation mode
// (-json): one record per sampled/explored batch, or one per run in
// seeded-run mode.
type record struct {
	Schema   string `json:"schema"`
	Protocol string `json:"protocol"`
	Task     string `json:"task"`
	Mode     string `json:"mode"` // run | explore | crash-sweep | sample-walk | sample-pct
	N        int    `json:"n"`
	Seed     int64  `json:"seed"`
	Workers  int    `json:"workers,omitempty"`
	// Model and Adversary name the execution model (docs/models.md);
	// absent means the defaults (atomic registers, uniform crashes).
	Model     string `json:"model,omitempty"`
	Adversary string `json:"adversary,omitempty"`
	// Schedules is the number of schedules/runs verified (trace classes
	// under -por; sampled runs under -sample).
	Schedules int `json:"schedules"`
	// Classes and Coverage report sampling's distinct-trace-class
	// coverage (classes hit, and classes/runs).
	Classes  int     `json:"classes,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	PCTDepth int     `json:"pct_depth,omitempty"`
	OK       bool    `json:"ok"`
	// Violation carries the verdict of a failed batch, including the
	// violating schedule (explore) or the failing run (sample/sweep).
	// FailedRun/FailedSeed are pointers so that a failure at run index
	// 0 (or a derived seed of 0) still serializes: absent fields mean
	// "no per-run failure info", never "run 0".
	Violation  string `json:"violation,omitempty"`
	FailedRun  *int   `json:"failed_run,omitempty"`
	FailedSeed *int64 `json:"failed_seed,omitempty"`
	// Seeded-run mode only.
	Outputs []int `json:"outputs,omitempty"`
	Crashed []int `json:"crashed,omitempty"`
	Steps   int   `json:"steps,omitempty"`
}

func emitJSON(rec record) error {
	rec.Schema = recordSchema
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func main() {
	protocol := flag.String("protocol", "slot-renaming", "protocol to run")
	n := flag.Int("n", 6, "number of processes")
	seed := flag.Int64("seed", 1, "scheduler seed")
	crash := flag.Float64("crash", 0, "per-decision crash probability (up to n-1 crashes)")
	runs := flag.Int("runs", 1, "number of seeded runs (seeds seed..seed+runs-1); with -explore -crash, the crash-sweep run count")
	trace := flag.Bool("trace", false, "print the step timeline of each run")
	explore := flag.Bool("explore", false, "model-check the protocol over every failure-free schedule instead of sampling")
	workers := flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS); only with -explore/-sample")
	maxRuns := flag.Int("maxruns", 1<<20, "exploration run budget; only with -explore")
	por := flag.Bool("por", false, "partial-order reduction: explore one schedule per commuting-step equivalence class; only with -explore")
	porMemo := flag.Bool("por-memo", false, "like -por, additionally deduplicating trace classes by canonical hash; only with -explore")
	sample := flag.Int("sample", 0, "statistically sample this many seeded schedules (uniform random walk) and report trace-class coverage")
	pctDepth := flag.Int("pct-depth", 0, "with -sample, use the PCT sampler with this bug depth (d-1 priority-change points; 0 = random walk)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable NDJSON result record per batch/run instead of text")
	model := flag.String("model", "", "memory model for register/snapshot semantics (see docs/models.md; default atomic)")
	adversary := flag.String("adversary", "", "crash adversary strategy for crash sweeps (see docs/models.md; default uniform-crash)")
	flag.Parse()

	if *n < 2 {
		fmt.Fprintln(os.Stderr, "gsbrun: need n >= 2")
		os.Exit(2)
	}
	// Registry names are validated eagerly so a typo is a usage error
	// with the registered names listed, not a late engine failure.
	if _, err := repro.MemModelByName(*model); err != nil {
		fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
		os.Exit(2)
	}
	if _, err := repro.AdversaryByName(*adversary); err != nil {
		fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
		os.Exit(2)
	}
	if *adversary != "" && !(*explore && *crash > 0) {
		fmt.Fprintln(os.Stderr, "gsbrun: -adversary selects a crash-sweep strategy and needs -explore -crash > 0")
		os.Exit(2)
	}
	// Explicitly naming a default is the same as not naming it: the
	// records (and campaign option hashes) of default runs stay
	// byte-identical to the pre-registry engine.
	if *model == repro.ModelAtomic {
		*model = ""
	}
	if *adversary == repro.AdversaryUniformCrash {
		*adversary = ""
	}
	reduction := repro.ReductionNone
	if *por {
		reduction = repro.ReductionSleepSets
	}
	if *porMemo {
		reduction = repro.ReductionSleepMemo
	}
	if *pctDepth > 0 && *sample <= 0 {
		fmt.Fprintln(os.Stderr, "gsbrun: -pct-depth needs -sample N")
		os.Exit(2)
	}
	if *sample > 0 && (*explore || *crash > 0 || *por || *porMemo || flagSet("maxruns")) {
		fmt.Fprintln(os.Stderr, "gsbrun: -sample conflicts with -explore/-crash/-por/-por-memo/-maxruns (pick one mode)")
		os.Exit(2)
	}
	if *sample > 0 {
		if err := sampleProtocol(*protocol, *n, *seed, *workers, *sample, *pctDepth, *model, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *explore {
		// -runs defaults to 1 for seeded runs; for a crash sweep an
		// unset -runs means a 1000-run sweep, but an explicit value —
		// even 1 — is honored.
		sweepRuns := *runs
		if !flagSet("runs") && *crash > 0 {
			sweepRuns = 1000
		}
		// Probability/budget validation happens inside the exploration
		// engine (ExploreOptions.Validate), so a bad -crash surfaces as
		// an error here rather than a panic in a worker goroutine.
		if err := exploreProtocol(*protocol, *n, *seed, *crash, *workers, *maxRuns, sweepRuns, reduction, *model, *adversary, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if math.IsNaN(*crash) || *crash < 0 || *crash > 1 {
		// The seeded-run path constructs the crash policy directly, so
		// validate here; the constructor panics on a bad probability.
		fmt.Fprintf(os.Stderr, "gsbrun: -crash %v outside [0, 1]\n", *crash)
		os.Exit(2)
	}
	for s := *seed; s < *seed+int64(*runs); s++ {
		if err := runOnce(*protocol, *n, s, *crash, *model, *trace, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
			os.Exit(1)
		}
	}
}

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// selectProtocol maps a -protocol name to its task spec and constructor:
// the registry shared with cmd/gsbcampaign (repro.SelectProtocol).
func selectProtocol(protocol string, n int, seed int64) (repro.Spec, func(n int) repro.Solver, error) {
	return repro.SelectProtocol(protocol, n, seed)
}

// sampleProtocol statistically samples the protocol's schedule space:
// sampleRuns seeded runs drawn by a uniform random walk, or by PCT when
// pctDepth > 0, each verified against the task, with distinct-trace-class
// coverage in the report.
func sampleProtocol(protocol string, n int, seed int64, workers, sampleRuns, pctDepth int, model string, jsonOut bool) error {
	spec, build, err := selectProtocol(protocol, n, seed)
	if err != nil {
		return err
	}
	mode := repro.SampleWalk
	if pctDepth > 0 {
		mode = repro.SamplePCT
	}
	opts := repro.ExploreOptions{Workers: workers, Seed: seed, SampleRuns: sampleRuns, SampleMode: mode, Depth: pctDepth, Model: model}
	rep, err := repro.SampleVerified(context.Background(), spec, repro.DefaultIDs(n), opts, build)
	if jsonOut {
		rec := record{
			Protocol:  protocol,
			Task:      spec.String(),
			Mode:      "sample-" + rep.Mode.String(),
			N:         n,
			Seed:      seed,
			Workers:   workers,
			Model:     model,
			Schedules: rep.Runs,
			Classes:   rep.Classes,
			Coverage:  rep.Coverage(),
			PCTDepth:  rep.Depth,
			OK:        err == nil,
		}
		if err != nil {
			rec.Violation = err.Error()
			if rep.FailedRun >= 0 {
				rec.FailedRun = &rep.FailedRun
				rec.FailedSeed = &rep.FailedSeed
			}
		}
		if jerr := emitJSON(rec); jerr != nil {
			return jerr
		}
		return err
	}
	if err != nil {
		return fmt.Errorf("after %d sampled runs (%d distinct trace classes): %w", rep.Runs, rep.Classes, err)
	}
	fmt.Printf("protocol=%s task=%v sampled %d schedules (%v", protocol, spec, rep.Runs, rep.Mode)
	if rep.Mode == repro.SamplePCT {
		fmt.Printf(", depth %d over a %d-step horizon", rep.Depth, rep.Horizon)
	}
	fmt.Printf(")\n")
	fmt.Printf("  %d runs verified against %v\n", rep.Runs, spec)
	fmt.Printf("  coverage: %d distinct trace classes (%.1f%% of runs found a new class)\n", rep.Classes, 100*rep.Coverage())
	return nil
}

// exploreProtocol model-checks the protocol: exhaustively over every
// failure-free schedule (one representative per commuting-step
// equivalence class under -por), or as a randomized crash sweep when
// crash > 0.
func exploreProtocol(protocol string, n int, seed int64, crash float64, workers, maxRuns, runs int, reduction repro.Reduction, model, adversary string, jsonOut bool) error {
	spec, build, err := selectProtocol(protocol, n, seed)
	if err != nil {
		return err
	}
	opts := repro.ExploreOptions{Workers: workers, MaxRuns: maxRuns, Seed: seed, Reduction: reduction, Model: model, Adversary: adversary}
	mode := "every failure-free schedule"
	recMode := "explore"
	if reduction != repro.ReductionNone {
		mode = fmt.Sprintf("every failure-free schedule (%v reduction)", reduction)
	}
	if crash > 0 {
		if runs < 1 {
			return fmt.Errorf("crash sweep needs -runs >= 1, got %d", runs)
		}
		opts.CrashRuns = runs
		opts.CrashProb = crash
		mode = fmt.Sprintf("%d crash-injected runs (p=%v)", runs, crash)
		recMode = "crash-sweep"
	}
	count, err := repro.ExploreVerified(context.Background(), spec, repro.DefaultIDs(n), opts, build)
	if jsonOut {
		rec := record{
			Protocol:  protocol,
			Task:      spec.String(),
			Mode:      recMode,
			N:         n,
			Seed:      seed,
			Workers:   workers,
			Model:     model,
			Adversary: adversary,
			Schedules: count,
			OK:        err == nil,
		}
		if err != nil {
			rec.Violation = err.Error()
		}
		if jerr := emitJSON(rec); jerr != nil {
			return jerr
		}
		return err
	}
	if err != nil {
		return fmt.Errorf("after %d schedules: %w", count, err)
	}
	fmt.Printf("protocol=%s task=%v explored %s\n", protocol, spec, mode)
	fmt.Printf("  %d schedules verified against %v\n", count, spec)
	return nil
}

func runOnce(protocol string, n int, seed int64, crash float64, model string, trace, jsonOut bool) error {
	spec, build, err := selectProtocol(protocol, n, seed)
	if err != nil {
		return err
	}
	var policy repro.Policy
	if crash > 0 {
		policy = repro.NewRandomCrashPolicy(seed, crash, n-1)
	} else {
		policy = repro.NewRandomPolicy(seed)
	}
	res, err := repro.RunVerifiedUnder(model, spec, repro.DefaultIDs(n), policy, build)
	if jsonOut {
		rec := record{
			Protocol: protocol,
			Task:     spec.String(),
			Mode:     "run",
			N:        n,
			Seed:     seed,
			Model:    model,
			OK:       err == nil,
		}
		if err != nil {
			rec.Violation = err.Error()
		} else {
			rec.Schedules = 1
			rec.Outputs = res.Outputs
			rec.Steps = res.Steps
			for i, c := range res.Crashed {
				if c {
					rec.Crashed = append(rec.Crashed, i)
				}
			}
		}
		if jerr := emitJSON(rec); jerr != nil {
			return jerr
		}
		return err
	}
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s task=%v seed=%d steps=%d\n", protocol, spec, seed, res.Steps)
	fmt.Printf("  outputs: %v\n", res.Outputs)
	crashed := []int{}
	for i, c := range res.Crashed {
		if c {
			crashed = append(crashed, i)
		}
	}
	if len(crashed) > 0 {
		fmt.Printf("  crashed processes: %v (undecided outputs print as 0)\n", crashed)
	}
	if trace {
		fmt.Print(repro.Timeline(n, res.Schedule))
		fmt.Print(repro.ScheduleSummary(n, res.Schedule))
	}
	fmt.Printf("  verification: ok\n")
	return nil
}
