// Command gsbrun executes one of the repository's wait-free protocols
// under a seeded adversarial scheduler and prints the run: the decided
// output vector, crash pattern, step counts and verification verdict.
// With -explore it instead model-checks the protocol over every
// failure-free schedule (or a randomized crash sweep when -crash > 0)
// using the parallel exploration engine.
//
// Usage:
//
//	gsbrun [-protocol slot-renaming] [-n 6] [-seed 1] [-crash 0.02] [-runs 1]
//	gsbrun -explore [-por] [-workers 8] [-maxruns 1000000] [-protocol slot-renaming] [-n 4]
//
// -por enables partial-order reduction: the exploration executes one
// schedule per equivalence class of commuting shared-memory steps (ops on
// distinct objects, and read-only pairs on the same object, commute)
// instead of every interleaving, with identical verdicts.
//
// Protocols:
//
//	renaming       snapshot-based adaptive (2n-1)-renaming
//	grid           Moir-Anderson splitter-grid renaming (n(n+1)/2 names)
//	slot-renaming  Figure 2: (n+1)-renaming from an (n-1)-slot object
//	wsb            WSB from a (2n-2)-renaming oracle
//	renaming-wsb   (2n-2)-renaming from a WSB oracle
//	election       election from perfect renaming (TAS row)
//	universal      <n,3,1,n>-GSB via Theorem 8 from perfect renaming
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	protocol := flag.String("protocol", "slot-renaming", "protocol to run")
	n := flag.Int("n", 6, "number of processes")
	seed := flag.Int64("seed", 1, "scheduler seed")
	crash := flag.Float64("crash", 0, "per-decision crash probability (up to n-1 crashes)")
	runs := flag.Int("runs", 1, "number of seeded runs (seeds seed..seed+runs-1); with -explore -crash, the crash-sweep run count")
	trace := flag.Bool("trace", false, "print the step timeline of each run")
	explore := flag.Bool("explore", false, "model-check the protocol over every failure-free schedule instead of sampling")
	workers := flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS); only with -explore")
	maxRuns := flag.Int("maxruns", 1<<20, "exploration run budget; only with -explore")
	por := flag.Bool("por", false, "partial-order reduction: explore one schedule per commuting-step equivalence class; only with -explore")
	porMemo := flag.Bool("por-memo", false, "like -por, additionally deduplicating trace classes by canonical hash; only with -explore")
	flag.Parse()

	if *n < 2 {
		fmt.Fprintln(os.Stderr, "gsbrun: need n >= 2")
		os.Exit(2)
	}
	reduction := repro.ReductionNone
	if *por {
		reduction = repro.ReductionSleepSets
	}
	if *porMemo {
		reduction = repro.ReductionSleepMemo
	}
	if *explore {
		// -runs defaults to 1 for seeded runs; for a crash sweep an
		// unset -runs means a 1000-run sweep, but an explicit value —
		// even 1 — is honored.
		sweepRuns := *runs
		if !flagSet("runs") && *crash > 0 {
			sweepRuns = 1000
		}
		// Probability/budget validation happens inside the exploration
		// engine (ExploreOptions.Validate), so a bad -crash surfaces as
		// an error here rather than a panic in a worker goroutine.
		if err := exploreProtocol(*protocol, *n, *seed, *crash, *workers, *maxRuns, sweepRuns, reduction); err != nil {
			fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if math.IsNaN(*crash) || *crash < 0 || *crash > 1 {
		// The seeded-run path constructs the crash policy directly, so
		// validate here; the constructor panics on a bad probability.
		fmt.Fprintf(os.Stderr, "gsbrun: -crash %v outside [0, 1]\n", *crash)
		os.Exit(2)
	}
	for s := *seed; s < *seed+int64(*runs); s++ {
		if err := runOnce(*protocol, *n, s, *crash, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
			os.Exit(1)
		}
	}
}

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// selectProtocol maps a -protocol name to its task spec and constructor.
func selectProtocol(protocol string, n int, seed int64) (repro.Spec, func(n int) repro.Solver, error) {
	switch protocol {
	case "renaming":
		return repro.Renaming(n, 2*n-1),
			func(n int) repro.Solver { return repro.NewSnapshotRenaming("R", n) }, nil
	case "grid":
		return repro.Renaming(n, n*(n+1)/2),
			func(n int) repro.Solver { return repro.NewGridRenaming("G", n) }, nil
	case "slot-renaming":
		return repro.Renaming(n, n+1), func(n int) repro.Solver {
			return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, seed))
		}, nil
	case "wsb":
		return repro.WSB(n), func(n int) repro.Solver {
			box := repro.NewTaskBox("R", repro.Renaming(n, 2*n-2), seed)
			return repro.NewWSBFromRenaming(n, repro.NewBoxSolver(box))
		}, nil
	case "renaming-wsb":
		return repro.Renaming(n, 2*n-2), func(n int) repro.Solver {
			return repro.NewRenamingFromWSB("RW", n, repro.WSBBox("WSB", n, seed))
		}, nil
	case "election":
		return repro.Election(n), func(n int) repro.Solver {
			return repro.NewElectionFromPerfectRenaming(repro.NewTASRenaming("TAS", n))
		}, nil
	case "universal":
		spec := repro.KSlot(n, 3)
		return spec, func(n int) repro.Solver {
			return repro.NewUniversalConstruction(spec, repro.NewTASRenaming("TAS", n))
		}, nil
	default:
		return repro.Spec{}, nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}

// exploreProtocol model-checks the protocol: exhaustively over every
// failure-free schedule (one representative per commuting-step
// equivalence class under -por), or as a randomized crash sweep when
// crash > 0.
func exploreProtocol(protocol string, n int, seed int64, crash float64, workers, maxRuns, runs int, reduction repro.Reduction) error {
	spec, build, err := selectProtocol(protocol, n, seed)
	if err != nil {
		return err
	}
	opts := repro.ExploreOptions{Workers: workers, MaxRuns: maxRuns, Seed: seed, Reduction: reduction}
	mode := "every failure-free schedule"
	if reduction != repro.ReductionNone {
		mode = fmt.Sprintf("every failure-free schedule (%v reduction)", reduction)
	}
	if crash > 0 {
		if runs < 1 {
			return fmt.Errorf("crash sweep needs -runs >= 1, got %d", runs)
		}
		opts.CrashRuns = runs
		opts.CrashProb = crash
		mode = fmt.Sprintf("%d crash-injected runs (p=%v)", runs, crash)
	}
	count, err := repro.ExploreVerified(context.Background(), spec, repro.DefaultIDs(n), opts, build)
	if err != nil {
		return fmt.Errorf("after %d schedules: %w", count, err)
	}
	fmt.Printf("protocol=%s task=%v explored %s\n", protocol, spec, mode)
	fmt.Printf("  %d schedules verified against %v\n", count, spec)
	return nil
}

func runOnce(protocol string, n int, seed int64, crash float64, trace bool) error {
	spec, build, err := selectProtocol(protocol, n, seed)
	if err != nil {
		return err
	}
	var policy repro.Policy
	if crash > 0 {
		policy = repro.NewRandomCrashPolicy(seed, crash, n-1)
	} else {
		policy = repro.NewRandomPolicy(seed)
	}
	res, err := repro.RunVerified(spec, repro.DefaultIDs(n), policy, build)
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s task=%v seed=%d steps=%d\n", protocol, spec, seed, res.Steps)
	fmt.Printf("  outputs: %v\n", res.Outputs)
	crashed := []int{}
	for i, c := range res.Crashed {
		if c {
			crashed = append(crashed, i)
		}
	}
	if len(crashed) > 0 {
		fmt.Printf("  crashed processes: %v (undecided outputs print as 0)\n", crashed)
	}
	if trace {
		fmt.Print(repro.Timeline(n, res.Schedule))
		fmt.Print(repro.ScheduleSummary(n, res.Schedule))
	}
	fmt.Printf("  verification: ok\n")
	return nil
}
