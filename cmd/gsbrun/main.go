// Command gsbrun executes one of the repository's wait-free protocols
// under a seeded adversarial scheduler and prints the run: the decided
// output vector, crash pattern, step counts and verification verdict.
//
// Usage:
//
//	gsbrun [-protocol slot-renaming] [-n 6] [-seed 1] [-crash 0.02] [-runs 1]
//
// Protocols:
//
//	renaming       snapshot-based adaptive (2n-1)-renaming
//	grid           Moir-Anderson splitter-grid renaming (n(n+1)/2 names)
//	slot-renaming  Figure 2: (n+1)-renaming from an (n-1)-slot object
//	wsb            WSB from a (2n-2)-renaming oracle
//	renaming-wsb   (2n-2)-renaming from a WSB oracle
//	election       election from perfect renaming (TAS row)
//	universal      <n,3,1,n>-GSB via Theorem 8 from perfect renaming
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	protocol := flag.String("protocol", "slot-renaming", "protocol to run")
	n := flag.Int("n", 6, "number of processes")
	seed := flag.Int64("seed", 1, "scheduler seed")
	crash := flag.Float64("crash", 0, "per-decision crash probability (up to n-1 crashes)")
	runs := flag.Int("runs", 1, "number of seeded runs (seeds seed..seed+runs-1)")
	trace := flag.Bool("trace", false, "print the step timeline of each run")
	flag.Parse()

	if *n < 2 {
		fmt.Fprintln(os.Stderr, "gsbrun: need n >= 2")
		os.Exit(2)
	}
	for s := *seed; s < *seed+int64(*runs); s++ {
		if err := runOnce(*protocol, *n, s, *crash, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "gsbrun: %v\n", err)
			os.Exit(1)
		}
	}
}

func runOnce(protocol string, n int, seed int64, crash float64, trace bool) error {
	var spec repro.Spec
	var build func(n int) repro.Solver
	switch protocol {
	case "renaming":
		spec = repro.Renaming(n, 2*n-1)
		build = func(n int) repro.Solver { return repro.NewSnapshotRenaming("R", n) }
	case "grid":
		spec = repro.Renaming(n, n*(n+1)/2)
		build = func(n int) repro.Solver { return repro.NewGridRenaming("G", n) }
	case "slot-renaming":
		spec = repro.Renaming(n, n+1)
		build = func(n int) repro.Solver {
			return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, seed))
		}
	case "wsb":
		spec = repro.WSB(n)
		build = func(n int) repro.Solver {
			box := repro.NewTaskBox("R", repro.Renaming(n, 2*n-2), seed)
			return repro.NewWSBFromRenaming(n, repro.NewBoxSolver(box))
		}
	case "renaming-wsb":
		spec = repro.Renaming(n, 2*n-2)
		build = func(n int) repro.Solver {
			return repro.NewRenamingFromWSB("RW", n, repro.WSBBox("WSB", n, seed))
		}
	case "election":
		spec = repro.Election(n)
		build = func(n int) repro.Solver {
			return repro.NewElectionFromPerfectRenaming(repro.NewTASRenaming("TAS", n))
		}
	case "universal":
		spec = repro.KSlot(n, 3)
		build = func(n int) repro.Solver {
			return repro.NewUniversalConstruction(spec, repro.NewTASRenaming("TAS", n))
		}
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}

	var policy repro.Policy
	if crash > 0 {
		policy = repro.NewRandomCrashPolicy(seed, crash, n-1)
	} else {
		policy = repro.NewRandomPolicy(seed)
	}
	res, err := repro.RunVerified(spec, repro.DefaultIDs(n), policy, build)
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s task=%v seed=%d steps=%d\n", protocol, spec, seed, res.Steps)
	fmt.Printf("  outputs: %v\n", res.Outputs)
	crashed := []int{}
	for i, c := range res.Crashed {
		if c {
			crashed = append(crashed, i)
		}
	}
	if len(crashed) > 0 {
		fmt.Printf("  crashed processes: %v (undecided outputs print as 0)\n", crashed)
	}
	if trace {
		fmt.Print(repro.Timeline(n, res.Schedule))
		fmt.Print(repro.ScheduleSummary(n, res.Schedule))
	}
	fmt.Printf("  verification: ok\n")
	return nil
}
