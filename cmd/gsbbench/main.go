// Command gsbbench measures the exploration engine and writes a
// machine-readable report (BENCH_sched.json) so the performance
// trajectory — schedule counts, runs per second, and the partial-order
// reduction factor — is tracked across PRs. CI runs it in the benchmark
// smoke step via `make bench`.
//
// Usage:
//
//	gsbbench [-out BENCH_sched.json] [-workers 0] [-full] [-profiles DIR]
//	gsbbench -out BENCH_ci.json -compare BENCH_sched.json
//
// -profiles DIR writes a pprof CPU profile per entry into DIR (file
// names derive from the entry identity; each entry records its own in
// the report's "profile" field), so every benchmark run leaves behind
// the data to answer "where did the time go" — inspect one with
// `go tool pprof gsbbench DIR/NAME.pprof`. `make bench` regenerates the
// committed baseline profiles under profiles/ alongside BENCH_sched.json.
//
// The default profile finishes in seconds; -full adds the larger
// explorations that partial-order reduction makes newly reachable
// (slot-renaming n=4, the <7,3> oracle-box instance).
//
// -compare turns the run into a regression gate against a baseline
// report (the committed BENCH_sched.json): after measuring, each entry
// is matched to the baseline entry with the same name/mode/reduction and
// the run fails if throughput dropped more than -max-drop (default 25%),
// if allocs-per-run grew beyond -max-allocs-growth, or if a
// deterministic column (schedule or class count) changed at all —
// determinism drift is a correctness regression, not noise. Baseline
// entries with no current counterpart fail the gate too (a vanished
// benchmark is a silent hole in coverage). A legitimate change to the
// measured set or counts means regenerating the baseline with
// `make bench`.
//
// When the gate fails on a performance regression the run also explains
// it: for each regressed entry whose CPU profile exists both under
// -baseline-profiles (default: the committed profiles/) and the current
// -profiles directory, it prints the top -explain-top per-function
// flat-time deltas between the two profiles, naming the suspect hot
// path. `gsbbench -explain BASE.pprof,CUR.pprof` prints the same table
// standalone for any two profiles.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro"
)

// Entry is one measurement: a protocol model-checked under one engine
// configuration.
type Entry struct {
	Name    string `json:"name"`
	Task    string `json:"task"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	// Mode distinguishes statistical sampling entries ("sample-walk",
	// "sample-pct") from the enumerating ones (empty: exhaustive or
	// reduced per the Reduction field).
	Mode      string `json:"mode,omitempty"`
	Reduction string `json:"reduction,omitempty"`
	// Schedules is the number of schedules verified: every interleaving
	// without reduction, one per commuting-step equivalence class with.
	Schedules  int     `json:"schedules"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// RunsPerSec is verified schedules per second of wall clock — the
	// end-to-end verification throughput. Under reduction the engine
	// additionally executes pruned probe runs that are excluded from
	// the numerator, so the figure is not raw executed-run throughput
	// and is only comparable within the same reduction mode.
	RunsPerSec float64 `json:"runs_per_sec"`
	// ReductionFactor is exhaustive schedules / reduced schedules for
	// the same protocol, when both are known (0 otherwise).
	ReductionFactor float64 `json:"reduction_factor,omitempty"`
	// Budget marks a budget-bounded throughput row: the exploration was
	// cut off after this many runs (the full tree is infeasible), so
	// Schedules equals the budget and RunsPerSec is the figure of merit.
	Budget int `json:"budget,omitempty"`
	// AllocsPerRun is the whole-pipeline heap-allocation rate of the
	// measurement: total mallocs (engine + policy + protocol
	// construction) divided by counted schedules. Like RunsPerSec, under
	// reduction the numerator includes the allocations of pruned probe
	// runs that the denominator excludes, so the figure is comparable
	// only within the same reduction mode. The runner's own steady-state
	// contribution is pinned at zero by the runner-steady-state gauge
	// entry; this end-to-end figure tracks everything riding on it.
	AllocsPerRun float64 `json:"allocs_per_run,omitempty"`
	// AllocsPerStep is reported by the runner-steady-state gauge entry:
	// steady-state heap allocations per scheduler step on a reused
	// runner. The pinned bound keeps it at (numerically) zero, so zero
	// is omitted like the other optional columns and the gauge's verdict
	// lives in the entry's presence and its Error field.
	AllocsPerStep float64 `json:"allocs_per_step,omitempty"`
	// Classes and Coverage are the sampling coverage columns: distinct
	// Mazurkiewicz trace classes hit by the batch, and Classes/Runs.
	Classes  int     `json:"classes,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	PCTDepth int     `json:"pct_depth,omitempty"`
	// Profile is the file name of this measurement's pprof CPU profile
	// inside the -profiles directory (`go tool pprof <binary> <profile>`).
	Profile string `json:"profile,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Report is the top-level BENCH_sched.json document.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Full       bool    `json:"full"`
	Entries    []Entry `json:"entries"`
}

type benchCase struct {
	name     string
	n        int
	spec     repro.Spec
	build    func(n int) repro.Solver
	fullOnly bool // exhaustive mode is infeasible; run reduced only
	// analytic is the exhaustive schedule count when it is known in
	// closed form (every process takes a fixed number of steps, making
	// the tree an exact multinomial); used for the reduction factor of
	// fullOnly cases, whose exhaustive walk cannot be executed.
	analytic int
	// exhaustBudget > 0 adds a budget-bounded exhaustive throughput row
	// for a fullOnly case: the walk is cut off after this many runs and
	// measured for runs/sec, the engine-throughput trajectory number.
	exhaustBudget int
}

// mallocs reads the cumulative heap-allocation count (monotonic; GC does
// not decrease it), for allocs-per-run deltas around a measurement.
func mallocs() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// multinomialSteps returns the number of interleavings of n processes
// taking k steps each: (nk)! / (k!)^n.
func multinomialSteps(n, k int) int {
	total := 1
	placed := 0
	for p := 0; p < n; p++ {
		// Multiply C(placed+k, k) into the running product.
		for i := 1; i <= k; i++ {
			placed++
			total = total * placed / i // exact: product of consecutive ints divisible by i!
		}
	}
	return total
}

func cases(full bool) []benchCase {
	var cs []benchCase
	for _, n := range []int{2, 3} {
		n := n
		cs = append(cs, benchCase{
			name: fmt.Sprintf("slot-renaming-%d", n),
			n:    n,
			spec: repro.Renaming(n, n+1),
			build: func(n int) repro.Solver {
				return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
			},
		})
	}
	boxCase := func(n int) benchCase {
		spec := repro.Hardest(n, 3)
		c := benchCase{
			name:     fmt.Sprintf("box-%d-3", n),
			n:        n,
			spec:     spec,
			build:    func(n int) repro.Solver { return repro.NewBoxSolver(repro.NewTaskBox("B", spec, 1)) },
			fullOnly: true,
			analytic: multinomialSteps(n, 2), // box invoke + decide per process
		}
		if n == 6 {
			// The <6,3> exhaustive row: the full 7,484,400-schedule tree
			// is infeasible in a smoke run, so measure raw engine
			// throughput over a fixed budget of its runs instead.
			c.exhaustBudget = 100000
		}
		return c
	}
	cs = append(cs, boxCase(6))
	if full {
		cs = append(cs, benchCase{
			name: "slot-renaming-4",
			n:    4,
			spec: repro.Renaming(4, 5),
			build: func(n int) repro.Solver {
				return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
			},
			fullOnly: true,
			analytic: multinomialSteps(4, 4), // invoke, write, snapshot, decide
		}, boxCase(7))
	}
	return cs
}

// slotCase is the Figure 2 slot-renaming protocol at size n, the
// standard sampling showcase (n >= 5 is beyond every enumerating mode).
func slotCase(n int) benchCase {
	return benchCase{
		name: fmt.Sprintf("slot-renaming-%d", n),
		n:    n,
		spec: repro.Renaming(n, n+1),
		build: func(n int) repro.Solver {
			return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
		},
	}
}

// sampleCases are the statistical-sampling measurements: instances whose
// schedule tree no enumerating mode completes, measured as sampled
// runs/sec plus trace-class coverage.
func sampleCases(full bool) []benchCase {
	cs := []benchCase{slotCase(6)}
	if full {
		cs = append(cs, slotCase(8))
	}
	return cs
}

func measureSample(c benchCase, workers, runs int, mode repro.SampleMode, depth int) Entry {
	opts := repro.ExploreOptions{Workers: workers, Seed: 1, SampleRuns: runs, SampleMode: mode, Depth: depth}
	once := func() (repro.SampleReport, time.Duration, uint64, error) {
		m0 := mallocs()
		start := time.Now()
		rep, err := repro.SampleVerified(context.Background(), c.spec, repro.DefaultIDs(c.n), opts, c.build)
		elapsed := time.Since(start)
		m1 := mallocs()
		return rep, elapsed, m1 - m0, err
	}
	rep, elapsed, allocs, err := once()
	reps := 1
	for err == nil && elapsed < minMeasure && reps < maxMeasureReps {
		rep2, elapsed2, allocs2, err2 := once()
		if err2 != nil {
			err = err2
			break
		}
		if rep2.Runs != rep.Runs || rep2.Classes != rep.Classes {
			err = fmt.Errorf("seeded batch drifted across repetitions: %d runs/%d classes then %d/%d",
				rep.Runs, rep.Classes, rep2.Runs, rep2.Classes)
			break
		}
		elapsed += elapsed2
		allocs += allocs2
		reps++
	}
	e := Entry{
		Name:       c.name,
		Task:       c.spec.String(),
		N:          c.n,
		Workers:    workers,
		Mode:       "sample-" + mode.String(),
		Schedules:  rep.Runs,
		Classes:    rep.Classes,
		Coverage:   rep.Coverage(),
		PCTDepth:   rep.Depth,
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		e.RunsPerSec = float64(rep.Runs*reps) / elapsed.Seconds()
	}
	if rep.Runs > 0 {
		e.AllocsPerRun = float64(allocs) / float64(rep.Runs*reps)
	}
	if err != nil {
		e.Error = err.Error()
	}
	return e
}

func measure(c benchCase, workers int, reduction repro.Reduction) Entry {
	return measureOpts(c, workers, repro.ExploreOptions{Workers: workers, MaxRuns: 1 << 22, Reduction: reduction}, false)
}

// minMeasure is the smallest wall-clock window a throughput figure may
// be derived from. A micro instance (slot renaming at n=2 verifies 8
// reduced schedules in a couple of milliseconds) is dominated by
// scheduler noise in a single sample and flakes the -compare gate;
// measurements finishing sooner are repeated — identical configuration,
// deterministic counts checked for drift — and aggregated.
const minMeasure = 250 * time.Millisecond

// maxMeasureReps bounds the repetition loop for degenerate measurements
// whose elapsed time stays near zero.
const maxMeasureReps = 1000

// measureBudgeted measures raw exhaustive engine throughput over a fixed
// run budget of a tree too large to finish; hitting the budget is the
// expected outcome, not an error.
func measureBudgeted(c benchCase, workers int) Entry {
	e := measureOpts(c, workers, repro.ExploreOptions{Workers: workers, MaxRuns: c.exhaustBudget}, true)
	e.Budget = c.exhaustBudget
	return e
}

func measureOpts(c benchCase, workers int, opts repro.ExploreOptions, budgeted bool) Entry {
	once := func() (int, time.Duration, uint64, error) {
		m0 := mallocs()
		start := time.Now()
		count, err := repro.ExploreVerified(context.Background(), c.spec, repro.DefaultIDs(c.n), opts, c.build)
		elapsed := time.Since(start)
		m1 := mallocs()
		if budgeted && errors.Is(err, repro.ErrExplorationBudget) {
			err = nil
		}
		return count, elapsed, m1 - m0, err
	}
	count, elapsed, allocs, err := once()
	reps := 1
	for err == nil && elapsed < minMeasure && reps < maxMeasureReps {
		count2, elapsed2, allocs2, err2 := once()
		if err2 != nil {
			err = err2
			break
		}
		if count2 != count {
			err = fmt.Errorf("schedule count drifted across repetitions: %d then %d", count, count2)
			break
		}
		elapsed += elapsed2
		allocs += allocs2
		reps++
	}
	e := Entry{
		Name:       c.name,
		Task:       c.spec.String(),
		N:          c.n,
		Workers:    workers,
		Reduction:  opts.Reduction.String(),
		Schedules:  count,
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		e.RunsPerSec = float64(count*reps) / elapsed.Seconds()
	}
	if count > 0 {
		e.AllocsPerRun = float64(allocs) / float64(count*reps)
	}
	if err != nil {
		e.Error = err.Error()
	}
	return e
}

// maxSteadyAllocsPerStep is the pinned bound on the reused runner's
// steady-state heap allocations per scheduler step. The hot path is
// designed (and unit-tested, sched.TestReusedRunnerAllocsPerStep) to
// allocate nothing at all; the gauge fails the bench run — and with it
// CI's bench-smoke step — if a regression pushes it above this slack.
const maxSteadyAllocsPerStep = 0.05

// measureRunnerGauge measures the runner's own steady-state allocation
// rate: a reused runner re-executing a fixed allocation-free body, with
// total mallocs counted across the batch. This isolates the runner from
// the exploration engine and protocol constructors that the allocs/run
// column of the other entries includes.
func measureRunnerGauge() Entry {
	const n, k, runs = 4, 8, 2000
	counter := 0
	op := func() any { counter++; return nil }
	body := func(p *repro.Proc) {
		for i := 0; i < k; i++ {
			p.Exec("inc", op)
		}
		p.Decide(1)
	}
	runner := repro.NewRunner(n, repro.DefaultIDs(n), repro.NewRoundRobinPolicy(), repro.WithReuse())
	defer runner.Close()
	batch := func(count int) (steps int) {
		for i := 0; i < count; i++ {
			res, err := runner.Run(body)
			if err != nil {
				panic(err)
			}
			steps += res.Steps
		}
		return steps
	}
	batch(5) // warm-up: buffers reach steady state
	runtime.GC()
	m0 := mallocs()
	start := time.Now()
	steps := batch(runs)
	elapsed := time.Since(start)
	m1 := mallocs()

	e := Entry{
		Name:          "runner-steady-state",
		Task:          fmt.Sprintf("counter x%d", k),
		N:             n,
		Workers:       1,
		Mode:          "allocs-gauge",
		Schedules:     runs,
		ElapsedSec:    elapsed.Seconds(),
		AllocsPerRun:  float64(m1-m0) / float64(runs),
		AllocsPerStep: float64(m1-m0) / float64(steps),
	}
	if elapsed > 0 {
		e.RunsPerSec = float64(runs) / elapsed.Seconds()
	}
	if e.AllocsPerStep > maxSteadyAllocsPerStep {
		e.Error = fmt.Sprintf("steady-state allocs/step %.4f exceeds the pinned bound %.2f", e.AllocsPerStep, maxSteadyAllocsPerStep)
	}
	return e
}

// profileSlug is the pprof file name of one measurement: the same
// identity components as entryKey, joined into a filesystem-safe name
// ("slot-renaming-2.sleep-sets.pprof", "box-6-3.none.budget100000.pprof").
func profileSlug(name, mode, reduction string, budget int) string {
	parts := []string{name}
	if mode != "" {
		parts = append(parts, mode)
	}
	if reduction != "" {
		parts = append(parts, reduction)
	}
	if budget > 0 {
		parts = append(parts, fmt.Sprintf("budget%d", budget))
	}
	slug := strings.Join(parts, ".")
	slug = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, slug)
	return slug + ".pprof"
}

// profiled runs one measurement under a CPU profile written to
// dir/<slug> (dir empty: no profiling). Measurements run sequentially,
// so the process-wide profiler is free each time; a profiling error
// marks the entry failed rather than silently dropping the profile.
func profiled(dir, slug string, measure func() Entry) Entry {
	if dir == "" {
		return measure()
	}
	path := filepath.Join(dir, slug)
	f, err := os.Create(path)
	if err == nil {
		err = pprof.StartCPUProfile(f)
		if err != nil {
			f.Close()
		}
	}
	if err != nil {
		e := measure()
		if e.Error == "" {
			e.Error = fmt.Sprintf("cpu profile: %v", err)
		}
		return e
	}
	e := measure()
	pprof.StopCPUProfile()
	if cerr := f.Close(); cerr != nil && e.Error == "" {
		e.Error = fmt.Sprintf("cpu profile: %v", cerr)
	}
	e.Profile = slug
	return e
}

// entryKey identifies an entry across reports: the measurement's name
// and configuration, excluding machine-dependent fields (worker count
// follows GOMAXPROCS, so it is part of the environment, not the
// measurement identity).
func entryKey(e Entry) string {
	return fmt.Sprintf("%s|%s|%s|%d", e.Name, e.Mode, e.Reduction, e.Budget)
}

// compareReports gates the current report against a baseline: returns
// the list of regressions (empty means the gate passes). Throughput may
// drop up to maxDrop (relative); allocs-per-run may grow up to
// maxAllocsGrowth (relative, plus half an allocation of absolute slack
// for counter noise); deterministic columns — schedule and class counts —
// must match exactly. The runner-steady-state gauge entry is excluded:
// its own pinned bound already gates it, in absolute terms.
//
// regressed pairs up the performance failures — (baseline, current) for
// each throughput-drop or allocs-growth failure — so the caller can
// explain them by diffing the two entries' CPU profiles.
func compareReports(cur, base Report, maxDrop, maxAllocsGrowth float64) (failures, notes []string, regressed [][2]Entry) {
	current := make(map[string]Entry, len(cur.Entries))
	for _, e := range cur.Entries {
		if e.Mode == "allocs-gauge" {
			continue
		}
		current[entryKey(e)] = e
	}
	for _, b := range base.Entries {
		if b.Mode == "allocs-gauge" {
			continue
		}
		key := entryKey(b)
		c, ok := current[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in the baseline but not measured now (coverage hole)", key))
			continue
		}
		delete(current, key)
		if c.Schedules != b.Schedules {
			failures = append(failures, fmt.Sprintf("%s: schedule count %d, baseline %d (determinism drift)", key, c.Schedules, b.Schedules))
		}
		if c.Classes != b.Classes {
			failures = append(failures, fmt.Sprintf("%s: class count %d, baseline %d (determinism drift)", key, c.Classes, b.Classes))
		}
		perf := false
		if b.RunsPerSec > 0 && c.RunsPerSec < b.RunsPerSec*(1-maxDrop) {
			failures = append(failures, fmt.Sprintf("%s: %.0f runs/s, down %.0f%% from the baseline's %.0f (limit %.0f%%)",
				key, c.RunsPerSec, 100*(1-c.RunsPerSec/b.RunsPerSec), b.RunsPerSec, 100*maxDrop))
			perf = true
		}
		if c.AllocsPerRun > b.AllocsPerRun*(1+maxAllocsGrowth)+0.5 {
			failures = append(failures, fmt.Sprintf("%s: %.1f allocs/run, up from the baseline's %.1f (limit +%.0f%%)",
				key, c.AllocsPerRun, b.AllocsPerRun, 100*maxAllocsGrowth))
			perf = true
		}
		if perf {
			regressed = append(regressed, [2]Entry{b, c})
		}
	}
	for key := range current {
		notes = append(notes, fmt.Sprintf("%s: new entry with no baseline (regenerate the baseline to start tracking it)", key))
	}
	sort.Strings(failures)
	sort.Strings(notes)
	sort.Slice(regressed, func(i, j int) bool { return entryKey(regressed[i][1]) < entryKey(regressed[j][1]) })
	return failures, notes, regressed
}

// explainRegressions prints a per-function flat-time delta table for
// each performance regression whose baseline and current CPU profiles
// both exist on disk — the part of the gate that names the suspect hot
// path instead of just the regressed number. A missing or unreadable
// profile downgrades to a note; the gate already failed.
func explainRegressions(w io.Writer, regressed [][2]Entry, baselineDir, curDir string, top int) {
	for _, pair := range regressed {
		b, c := pair[0], pair[1]
		key := entryKey(c)
		if b.Profile == "" || c.Profile == "" || baselineDir == "" || curDir == "" {
			fmt.Fprintf(w, "gsbbench: %s: no profile pair to explain the regression with (run with -profiles against committed baselines)\n", key)
			continue
		}
		table, err := repro.ExplainProfileDiff(filepath.Join(baselineDir, b.Profile), filepath.Join(curDir, c.Profile), top)
		if err != nil {
			fmt.Fprintf(w, "gsbbench: %s: cannot explain the regression: %v\n", key, err)
			continue
		}
		fmt.Fprintf(w, "gsbbench: %s: top-%d flat-time shifts, baseline profile vs current:\n%s", key, top, table)
	}
}

func main() {
	out := flag.String("out", "BENCH_sched.json", "output path for the JSON report")
	workers := flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS)")
	full := flag.Bool("full", false, "include the larger explorations (slower)")
	compare := flag.String("compare", "", "baseline report to regression-gate against (fail on throughput drops, allocs growth, or count drift)")
	maxDrop := flag.Float64("max-drop", 0.25, "with -compare, the largest tolerated relative runs/sec drop")
	maxAllocsGrowth := flag.Float64("max-allocs-growth", 0.02, "with -compare, the largest tolerated relative allocs-per-run growth (the noise floor on 'any increase fails')")
	profiles := flag.String("profiles", "", "directory for per-entry pprof CPU profiles (created if missing; empty = no profiling)")
	baselineProfiles := flag.String("baseline-profiles", "profiles", "with -compare, the directory holding the baseline report's committed pprof profiles (for regression explanations)")
	explainTop := flag.Int("explain-top", 10, "how many per-function flat-time deltas a regression explanation prints")
	explain := flag.String("explain", "", "standalone mode: BASE.pprof,CUR.pprof — print the per-function flat-time deltas between two profiles and exit")
	flag.Parse()

	if *explain != "" {
		basePath, curPath, ok := strings.Cut(*explain, ",")
		if !ok {
			fmt.Fprintf(os.Stderr, "gsbbench: -explain wants BASE.pprof,CUR.pprof, got %q\n", *explain)
			os.Exit(1)
		}
		table, err := repro.ExplainProfileDiff(basePath, curPath, *explainTop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbbench: -explain: %v\n", err)
			os.Exit(1)
		}
		if table == "" {
			fmt.Println("no per-function flat-time shifts between the two profiles")
			return
		}
		fmt.Printf("top-%d flat-time shifts, %s vs %s:\n%s", *explainTop, basePath, curPath, table)
		return
	}

	if *profiles != "" {
		if err := os.MkdirAll(*profiles, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gsbbench: -profiles: %v\n", err)
			os.Exit(1)
		}
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rep := Report{
		Schema:     "gsb-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Full:       *full,
	}
	for _, c := range cases(*full) {
		reduced := profiled(*profiles, profileSlug(c.name, "", repro.ReductionSleepSets.String(), 0),
			func() Entry { return measure(c, w, repro.ReductionSleepSets) })
		if !c.fullOnly {
			exhaustive := profiled(*profiles, profileSlug(c.name, "", repro.ReductionNone.String(), 0),
				func() Entry { return measure(c, w, repro.ReductionNone) })
			if exhaustive.Error == "" && reduced.Error == "" && reduced.Schedules > 0 {
				reduced.ReductionFactor = float64(exhaustive.Schedules) / float64(reduced.Schedules)
			}
			rep.Entries = append(rep.Entries, exhaustive)
		} else if c.analytic > 0 && reduced.Error == "" && reduced.Schedules > 0 {
			reduced.ReductionFactor = float64(c.analytic) / float64(reduced.Schedules)
		}
		if c.fullOnly && c.exhaustBudget > 0 {
			// Raw exhaustive engine throughput over a fixed budget of a
			// tree too big to finish (the runs/sec trajectory row).
			budgeted := profiled(*profiles, profileSlug(c.name, "", repro.ReductionNone.String(), c.exhaustBudget),
				func() Entry { return measureBudgeted(c, w) })
			rep.Entries = append(rep.Entries, budgeted)
			fmt.Printf("  %-18s n=%d %-12s %8d schedules  %8.0f runs/s  %6.1f allocs/run (budget)\n",
				c.name, c.n, budgeted.Reduction, budgeted.Schedules, budgeted.RunsPerSec, budgeted.AllocsPerRun)
		}
		rep.Entries = append(rep.Entries, reduced)
		fmt.Printf("  %-18s n=%d %-12s %8d schedules  %8.0f runs/s  %6.1f allocs/run  factor %.0fx\n",
			c.name, c.n, reduced.Reduction, reduced.Schedules, reduced.RunsPerSec, reduced.AllocsPerRun, reduced.ReductionFactor)
	}
	// The runner's steady-state allocation gauge: pinned at zero
	// allocs/step; exceeding the bound fails the bench run (and CI).
	gauge := profiled(*profiles, profileSlug("runner-steady-state", "allocs-gauge", "", 0), measureRunnerGauge)
	rep.Entries = append(rep.Entries, gauge)
	fmt.Printf("  %-18s n=%d %-12s %8d runs       %8.0f runs/s  %.4f allocs/step (bound %.2f)\n",
		gauge.Name, gauge.N, gauge.Mode, gauge.Schedules, gauge.RunsPerSec, gauge.AllocsPerStep, maxSteadyAllocsPerStep)
	// Statistical sampling: runs/sec plus trace-class coverage on the
	// instances the enumerating modes cannot complete.
	sampleRuns := 2000
	if *full {
		sampleRuns = 10000
	}
	for _, c := range sampleCases(*full) {
		for _, mode := range []repro.SampleMode{repro.SampleWalk, repro.SamplePCT} {
			e := profiled(*profiles, profileSlug(c.name, "sample-"+mode.String(), "", 0),
				func() Entry { return measureSample(c, w, sampleRuns, mode, 0) })
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("  %-18s n=%d %-12s %8d runs       %8.0f runs/s  %d classes (%.2f coverage)\n",
				c.name, c.n, e.Mode, e.Schedules, e.RunsPerSec, e.Classes, e.Coverage)
		}
	}
	// Any failed measurement — exhaustive or reduced — fails the run, so
	// CI's bench step gates on it rather than burying it in the artifact.
	failed := false
	for _, e := range rep.Entries {
		if e.Error != "" {
			label := e.Reduction
			if label == "" {
				label = e.Mode
			}
			fmt.Fprintf(os.Stderr, "gsbbench: %s (%s): %s\n", e.Name, label, e.Error)
			failed = true
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbbench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "gsbbench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "gsbbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(rep.Entries))

	if *compare != "" {
		bf, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbbench: baseline: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(bf, &base); err != nil {
			fmt.Fprintf(os.Stderr, "gsbbench: baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if base.Schema != rep.Schema {
			fmt.Fprintf(os.Stderr, "gsbbench: baseline %s has schema %q, this build writes %q (regenerate the baseline)\n", *compare, base.Schema, rep.Schema)
			os.Exit(1)
		}
		failures, notes, regressed := compareReports(rep, base, *maxDrop, *maxAllocsGrowth)
		for _, n := range notes {
			fmt.Printf("  note: %s\n", n)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "gsbbench: regression vs %s: %s\n", *compare, f)
			}
			explainRegressions(os.Stderr, regressed, *baselineProfiles, *profiles, *explainTop)
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (max runs/sec drop %.0f%%, max allocs growth %.0f%%)\n", *compare, 100**maxDrop, 100**maxAllocsGrowth)
	}
	if failed {
		os.Exit(1)
	}
}
