// Command gsbbench measures the exploration engine and writes a
// machine-readable report (BENCH_sched.json) so the performance
// trajectory — schedule counts, runs per second, and the partial-order
// reduction factor — is tracked across PRs. CI runs it in the benchmark
// smoke step via `make bench`.
//
// Usage:
//
//	gsbbench [-out BENCH_sched.json] [-workers 0] [-full]
//
// The default profile finishes in seconds; -full adds the larger
// explorations that partial-order reduction makes newly reachable
// (slot-renaming n=4, the <7,3> oracle-box instance).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
)

// Entry is one measurement: a protocol model-checked under one engine
// configuration.
type Entry struct {
	Name    string `json:"name"`
	Task    string `json:"task"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	// Mode distinguishes statistical sampling entries ("sample-walk",
	// "sample-pct") from the enumerating ones (empty: exhaustive or
	// reduced per the Reduction field).
	Mode      string `json:"mode,omitempty"`
	Reduction string `json:"reduction,omitempty"`
	// Schedules is the number of schedules verified: every interleaving
	// without reduction, one per commuting-step equivalence class with.
	Schedules  int     `json:"schedules"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// RunsPerSec is verified schedules per second of wall clock — the
	// end-to-end verification throughput. Under reduction the engine
	// additionally executes pruned probe runs that are excluded from
	// the numerator, so the figure is not raw executed-run throughput
	// and is only comparable within the same reduction mode.
	RunsPerSec float64 `json:"runs_per_sec"`
	// ReductionFactor is exhaustive schedules / reduced schedules for
	// the same protocol, when both are known (0 otherwise).
	ReductionFactor float64 `json:"reduction_factor,omitempty"`
	// Classes and Coverage are the sampling coverage columns: distinct
	// Mazurkiewicz trace classes hit by the batch, and Classes/Runs.
	Classes  int     `json:"classes,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	PCTDepth int     `json:"pct_depth,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Report is the top-level BENCH_sched.json document.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Full       bool    `json:"full"`
	Entries    []Entry `json:"entries"`
}

type benchCase struct {
	name     string
	n        int
	spec     repro.Spec
	build    func(n int) repro.Solver
	fullOnly bool // exhaustive mode is infeasible; run reduced only
	// analytic is the exhaustive schedule count when it is known in
	// closed form (every process takes a fixed number of steps, making
	// the tree an exact multinomial); used for the reduction factor of
	// fullOnly cases, whose exhaustive walk cannot be executed.
	analytic int
}

// multinomialSteps returns the number of interleavings of n processes
// taking k steps each: (nk)! / (k!)^n.
func multinomialSteps(n, k int) int {
	total := 1
	placed := 0
	for p := 0; p < n; p++ {
		// Multiply C(placed+k, k) into the running product.
		for i := 1; i <= k; i++ {
			placed++
			total = total * placed / i // exact: product of consecutive ints divisible by i!
		}
	}
	return total
}

func cases(full bool) []benchCase {
	var cs []benchCase
	for _, n := range []int{2, 3} {
		n := n
		cs = append(cs, benchCase{
			name: fmt.Sprintf("slot-renaming-%d", n),
			n:    n,
			spec: repro.Renaming(n, n+1),
			build: func(n int) repro.Solver {
				return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
			},
		})
	}
	boxCase := func(n int) benchCase {
		spec := repro.Hardest(n, 3)
		return benchCase{
			name:     fmt.Sprintf("box-%d-3", n),
			n:        n,
			spec:     spec,
			build:    func(n int) repro.Solver { return repro.NewBoxSolver(repro.NewTaskBox("B", spec, 1)) },
			fullOnly: true,
			analytic: multinomialSteps(n, 2), // box invoke + decide per process
		}
	}
	cs = append(cs, boxCase(6))
	if full {
		cs = append(cs, benchCase{
			name: "slot-renaming-4",
			n:    4,
			spec: repro.Renaming(4, 5),
			build: func(n int) repro.Solver {
				return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
			},
			fullOnly: true,
			analytic: multinomialSteps(4, 4), // invoke, write, snapshot, decide
		}, boxCase(7))
	}
	return cs
}

// slotCase is the Figure 2 slot-renaming protocol at size n, the
// standard sampling showcase (n >= 5 is beyond every enumerating mode).
func slotCase(n int) benchCase {
	return benchCase{
		name: fmt.Sprintf("slot-renaming-%d", n),
		n:    n,
		spec: repro.Renaming(n, n+1),
		build: func(n int) repro.Solver {
			return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
		},
	}
}

// sampleCases are the statistical-sampling measurements: instances whose
// schedule tree no enumerating mode completes, measured as sampled
// runs/sec plus trace-class coverage.
func sampleCases(full bool) []benchCase {
	cs := []benchCase{slotCase(6)}
	if full {
		cs = append(cs, slotCase(8))
	}
	return cs
}

func measureSample(c benchCase, workers, runs int, mode repro.SampleMode, depth int) Entry {
	opts := repro.ExploreOptions{Workers: workers, Seed: 1, SampleRuns: runs, SampleMode: mode, Depth: depth}
	start := time.Now()
	rep, err := repro.SampleVerified(context.Background(), c.spec, repro.DefaultIDs(c.n), opts, c.build)
	elapsed := time.Since(start)
	e := Entry{
		Name:       c.name,
		Task:       c.spec.String(),
		N:          c.n,
		Workers:    workers,
		Mode:       "sample-" + mode.String(),
		Schedules:  rep.Runs,
		Classes:    rep.Classes,
		Coverage:   rep.Coverage(),
		PCTDepth:   rep.Depth,
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		e.RunsPerSec = float64(rep.Runs) / elapsed.Seconds()
	}
	if err != nil {
		e.Error = err.Error()
	}
	return e
}

func measure(c benchCase, workers int, reduction repro.Reduction) Entry {
	opts := repro.ExploreOptions{Workers: workers, MaxRuns: 1 << 22, Reduction: reduction}
	start := time.Now()
	count, err := repro.ExploreVerified(context.Background(), c.spec, repro.DefaultIDs(c.n), opts, c.build)
	elapsed := time.Since(start)
	e := Entry{
		Name:       c.name,
		Task:       c.spec.String(),
		N:          c.n,
		Workers:    workers,
		Reduction:  reduction.String(),
		Schedules:  count,
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		e.RunsPerSec = float64(count) / elapsed.Seconds()
	}
	if err != nil {
		e.Error = err.Error()
	}
	return e
}

func main() {
	out := flag.String("out", "BENCH_sched.json", "output path for the JSON report")
	workers := flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS)")
	full := flag.Bool("full", false, "include the larger explorations (slower)")
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rep := Report{
		Schema:     "gsb-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Full:       *full,
	}
	for _, c := range cases(*full) {
		reduced := measure(c, w, repro.ReductionSleepSets)
		if !c.fullOnly {
			exhaustive := measure(c, w, repro.ReductionNone)
			if exhaustive.Error == "" && reduced.Error == "" && reduced.Schedules > 0 {
				reduced.ReductionFactor = float64(exhaustive.Schedules) / float64(reduced.Schedules)
			}
			rep.Entries = append(rep.Entries, exhaustive)
		} else if c.analytic > 0 && reduced.Error == "" && reduced.Schedules > 0 {
			reduced.ReductionFactor = float64(c.analytic) / float64(reduced.Schedules)
		}
		rep.Entries = append(rep.Entries, reduced)
		fmt.Printf("  %-18s n=%d %-12s %8d schedules  %8.0f runs/s  factor %.0fx\n",
			c.name, c.n, reduced.Reduction, reduced.Schedules, reduced.RunsPerSec, reduced.ReductionFactor)
	}
	// Statistical sampling: runs/sec plus trace-class coverage on the
	// instances the enumerating modes cannot complete.
	sampleRuns := 2000
	if *full {
		sampleRuns = 10000
	}
	for _, c := range sampleCases(*full) {
		for _, mode := range []repro.SampleMode{repro.SampleWalk, repro.SamplePCT} {
			e := measureSample(c, w, sampleRuns, mode, 0)
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("  %-18s n=%d %-12s %8d runs       %8.0f runs/s  %d classes (%.2f coverage)\n",
				c.name, c.n, e.Mode, e.Schedules, e.RunsPerSec, e.Classes, e.Coverage)
		}
	}
	// Any failed measurement — exhaustive or reduced — fails the run, so
	// CI's bench step gates on it rather than burying it in the artifact.
	failed := false
	for _, e := range rep.Entries {
		if e.Error != "" {
			label := e.Reduction
			if label == "" {
				label = e.Mode
			}
			fmt.Fprintf(os.Stderr, "gsbbench: %s (%s): %s\n", e.Name, label, e.Error)
			failed = true
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbbench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "gsbbench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "gsbbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(rep.Entries))
	if failed {
		os.Exit(1)
	}
}
