package main

import (
	"strings"
	"testing"
)

func entry(name, mode, reduction string, schedules, classes int, runsPerSec, allocs float64) Entry {
	return Entry{
		Name: name, Mode: mode, Reduction: reduction,
		Schedules: schedules, Classes: classes,
		RunsPerSec: runsPerSec, AllocsPerRun: allocs,
	}
}

// TestCompareReports covers the regression gate's decision table:
// throughput drops beyond the limit fail, small drops pass, any
// meaningful allocs growth fails, schedule/class drift fails regardless
// of performance, vanished baseline entries fail, new entries only note,
// and the allocs gauge is excluded.
func TestCompareReports(t *testing.T) {
	base := Report{Schema: "gsb-bench/v1", Entries: []Entry{
		entry("box-6-3", "", "sleep-sets", 720, 0, 1000, 100),
		entry("slot-renaming-6", "sample-walk", "", 2000, 1980, 5000, 50),
		{Name: "runner-steady-state", Mode: "allocs-gauge", Schedules: 2000, RunsPerSec: 90000, AllocsPerStep: 0},
	}}

	cases := []struct {
		name     string
		mutate   func(*Report)
		wantFail string // substring of a failure, "" means the gate passes
		wantNote string
	}{
		{"identical", func(*Report) {}, "", ""},
		{"small-drop-ok", func(r *Report) { r.Entries[0].RunsPerSec = 800 }, "", ""},
		{"big-drop-fails", func(r *Report) { r.Entries[0].RunsPerSec = 700 }, "down 30%", ""},
		{"allocs-growth-fails", func(r *Report) { r.Entries[0].AllocsPerRun = 110 }, "allocs/run", ""},
		{"allocs-noise-ok", func(r *Report) { r.Entries[0].AllocsPerRun = 100.4 }, "", ""},
		{"schedule-drift-fails", func(r *Report) { r.Entries[0].Schedules = 719 }, "determinism drift", ""},
		{"class-drift-fails", func(r *Report) { r.Entries[1].Classes = 1979 }, "determinism drift", ""},
		{"missing-entry-fails", func(r *Report) { r.Entries = r.Entries[1:] }, "coverage hole", ""},
		{"new-entry-notes", func(r *Report) {
			r.Entries = append(r.Entries, entry("new-case", "", "none", 10, 0, 1, 1))
		}, "", "no baseline"},
		{"gauge-excluded", func(r *Report) { r.Entries[2].RunsPerSec = 1 }, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := Report{Schema: base.Schema}
			cur.Entries = append([]Entry(nil), base.Entries...)
			tc.mutate(&cur)
			failures, notes, _ := compareReports(cur, base, 0.25, 0.02)
			if tc.wantFail == "" && len(failures) > 0 {
				t.Errorf("unexpected failures: %v", failures)
			}
			if tc.wantFail != "" && !strings.Contains(strings.Join(failures, "\n"), tc.wantFail) {
				t.Errorf("failures %v do not mention %q", failures, tc.wantFail)
			}
			if tc.wantNote != "" && !strings.Contains(strings.Join(notes, "\n"), tc.wantNote) {
				t.Errorf("notes %v do not mention %q", notes, tc.wantNote)
			}
		})
	}
}

// TestCompareReportsPairsRegressions: the gate returns the
// (baseline, current) entry pair for performance failures — and only
// those — so main can diff their CPU profiles.
func TestCompareReportsPairsRegressions(t *testing.T) {
	base := Report{Schema: "gsb-bench/v1", Entries: []Entry{
		entry("box-6-3", "", "sleep-sets", 720, 0, 1000, 100),
		entry("slot-renaming-2", "", "sleep-sets", 8, 0, 9000, 10),
	}}
	cur := Report{Schema: base.Schema, Entries: []Entry{
		entry("box-6-3", "", "sleep-sets", 720, 0, 500, 100),       // throughput drop
		entry("slot-renaming-2", "", "sleep-sets", 7, 0, 9000, 10), // drift, not perf
	}}
	failures, _, regressed := compareReports(cur, base, 0.25, 0.02)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want drop + drift", failures)
	}
	if len(regressed) != 1 || regressed[0][0].Name != "box-6-3" || regressed[0][1].RunsPerSec != 500 {
		t.Fatalf("regressed pairs = %+v, want the single throughput drop", regressed)
	}
}

// TestExplainRegressions exercises the profile-diff explanation against
// the committed induced-regression fixture pair, plus the degraded
// no-profile path.
func TestExplainRegressions(t *testing.T) {
	b := entry("box-6-3", "", "sleep-sets", 720, 0, 1000, 100)
	c := b
	c.RunsPerSec = 500
	b.Profile, c.Profile = "base.pprof", "regressed.pprof"
	var buf strings.Builder
	explainRegressions(&buf, [][2]Entry{{b, c}}, "../../internal/profdiff/testdata", "../../internal/profdiff/testdata", 10)
	out := buf.String()
	for _, want := range []string{
		"box-6-3||sleep-sets|0: top-10 flat-time shifts",
		"repro/internal/sched.(*runner).hotStep",
		"+30.00%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	c.Profile = ""
	explainRegressions(&buf, [][2]Entry{{b, c}}, "profiles", "", 10)
	if !strings.Contains(buf.String(), "no profile pair") {
		t.Errorf("missing-profile note absent:\n%s", buf.String())
	}

	buf.Reset()
	c.Profile = "nonexistent.pprof"
	explainRegressions(&buf, [][2]Entry{{b, c}}, "../../internal/profdiff/testdata", "../../internal/profdiff/testdata", 10)
	if !strings.Contains(buf.String(), "cannot explain") {
		t.Errorf("unreadable-profile note absent:\n%s", buf.String())
	}
}
