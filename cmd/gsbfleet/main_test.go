package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro"
)

func TestMain(m *testing.M) {
	if os.Getenv("GSB_CLI_UNDER_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GSB_CLI_UNDER_TEST=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("exec: %v", err)
	}
	return out.String(), errb.String(), code
}

// TestGsbfleetInvalidUsage: every malformed invocation exits with the
// usage code (2) or failure code (1) and a diagnostic — never a panic,
// never code 0. Submissions are validated client-side, so a typo never
// even reaches a coordinator (the dummy URL below is never dialed).
func TestGsbfleetInvalidUsage(t *testing.T) {
	dummy := "http://127.0.0.1:1"
	missing := filepath.Join(t.TempDir(), "missing.ckpt")
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantMsg  string
	}{
		{"no-command", nil, 2, "usage"},
		{"unknown-command", []string{"explode"}, 2, "unknown command"},
		{"coordinator-no-data", []string{"coordinator"}, 2, "-data is required"},
		{"worker-no-coordinator", []string{"worker"}, 2, "-coordinator is required"},
		{"submit-no-coordinator", []string{"submit"}, 2, "-coordinator is required"},
		{"submit-bad-mode", []string{"submit", "-coordinator", dummy, "-mode", "bogus"}, 2, "unknown mode"},
		{"submit-bad-protocol", []string{"submit", "-coordinator", dummy, "-protocol", "bogus"}, 2, "unknown protocol"},
		{"submit-n-too-small", []string{"submit", "-coordinator", dummy, "-n", "1"}, 2, "n >= 2"},
		{"submit-walk-no-runs", []string{"submit", "-coordinator", dummy, "-mode", "walk"}, 2, "needs runs"},
		{"submit-adversary-without-crash", []string{"submit", "-coordinator", dummy, "-adversary", "uniform-crash"}, 2, "needs mode crash"},
		{"submit-negative-shards", []string{"submit", "-coordinator", dummy, "-shards", "-3"}, 2, "shards >= 1"},
		{"submit-undefined-flag", []string{"submit", "-bogus"}, 2, "flag provided but not defined"},
		{"submit-unreachable", []string{"submit", "-coordinator", dummy, "-protocol", "wsb", "-n", "4"}, 1, "refused"},
		{"status-no-coordinator", []string{"status"}, 2, "-coordinator is required"},
		{"result-no-id", []string{"result", "-coordinator", dummy}, 2, "-id are required"},
		{"upload-no-flags", []string{"upload"}, 2, "need -coordinator"},
		{"upload-no-file", []string{"upload", "-coordinator", dummy, "-id", "c1", "-shard", "0"}, 2, "one snapshot file"},
		{"upload-missing-file", []string{"upload", "-coordinator", dummy, "-id", "c1", "-shard", "0", missing}, 1, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runSelf(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("args %v: exit %d, want %d\nstdout: %s\nstderr: %s", tc.args, code, tc.wantCode, stdout, stderr)
			}
			if !strings.Contains(strings.ToLower(stderr), strings.ToLower(tc.wantMsg)) {
				t.Errorf("args %v: stderr %q does not mention %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

// daemon is a coordinator or worker subprocess whose stderr is captured
// while it runs.
type daemon struct {
	cmd    *exec.Cmd
	stderr *lockedBuffer
}

type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startDaemon launches a gsbfleet subcommand, waits for announce to
// appear on stderr, and returns the first regexp group.
func startDaemon(t *testing.T, announce string, args ...string) (*daemon, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GSB_CLI_UNDER_TEST=1")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &lockedBuffer{}}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	re := regexp.MustCompile(announce)
	found := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.stderr.mu.Lock()
			d.stderr.b.WriteString(line + "\n")
			d.stderr.mu.Unlock()
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case found <- m[len(m)-1]:
				default:
				}
			}
		}
	}()
	select {
	case got := <-found:
		return d, got
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon %v never announced %q; stderr:\n%s", args, announce, d.stderr.String())
		return nil, ""
	}
}

// sigterm drains the daemon and asserts a clean exit.
func (d *daemon) sigterm(t *testing.T, label string) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("%s: signal: %v", label, err)
	}
	err := d.cmd.Wait()
	var ee *exec.ExitError
	if err != nil && (!errors.As(err, &ee) || ee.ExitCode() != 0) {
		t.Errorf("%s: SIGTERM exit: %v\nstderr:\n%s", label, err, d.stderr.String())
	}
}

// TestGsbfleetLifecycle drives a whole fleet through the CLI over a real
// HTTP listener on :0: coordinator up, worker up, submit -wait a 2-shard
// campaign, check status and result, then SIGTERM-drain the worker and
// the coordinator.
func TestGsbfleetLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	coord, url := startDaemon(t, `serving gsbfleet/v1 on (http://\S+)`,
		"coordinator", "-listen", "127.0.0.1:0", "-data", dataDir, "-heartbeat", "2s")
	worker, _ := startDaemon(t, `registered as (\S+)`,
		"worker", "-coordinator", url, "-name", "cli-worker", "-work", t.TempDir(), "-poll", "50ms")

	stdout, stderr, code := runSelf(t,
		"submit", "-coordinator", url, "-protocol", "wsb", "-n", "4", "-mode", "por",
		"-shards", "2", "-every", "50", "-wait", "-interval", "100ms", "-json")
	if code != 0 {
		t.Fatalf("submit -wait: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	var st repro.FleetCampaignStatus
	if err := json.Unmarshal([]byte(strings.TrimSpace(stdout)), &st); err != nil {
		t.Fatalf("submit -wait output is not JSON: %v\n%s", err, stdout)
	}
	if st.State != "done" || st.Report == nil || st.Report.Schedules <= 0 || st.Violation != "" {
		t.Fatalf("submit -wait status: %+v", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("campaign ran as %d shards, want 2", len(st.Shards))
	}

	stdout, stderr, code = runSelf(t, "status", "-coordinator", url, "-json")
	if code != 0 {
		t.Fatalf("status: exit %d\n%s", code, stderr)
	}
	var fs repro.FleetStatus
	if err := json.Unmarshal([]byte(strings.TrimSpace(stdout)), &fs); err != nil {
		t.Fatalf("status output is not JSON: %v\n%s", err, stdout)
	}
	if fs.Schema != repro.FleetStatusSchema || len(fs.Workers) != 1 || fs.Done != 2 {
		t.Errorf("fleet status: %+v", fs)
	}
	if fs.Workers[0].Name != "cli-worker" {
		t.Errorf("worker name %q, want cli-worker", fs.Workers[0].Name)
	}

	// The human rendering of the same state.
	stdout, _, code = runSelf(t, "status", "-coordinator", url)
	if code != 0 || !strings.Contains(stdout, "cli-worker") || !strings.Contains(stdout, "done") {
		t.Errorf("text status: exit %d\n%s", code, stdout)
	}

	stdout, stderr, code = runSelf(t, "result", "-coordinator", url, "-id", st.ID)
	if code != 0 || !strings.Contains(stdout, "verified") {
		t.Errorf("result: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if _, stderr, code = runSelf(t, "result", "-coordinator", url, "-id", "c9999"); code != 1 || !strings.Contains(stderr, "unknown campaign") {
		t.Errorf("result of unknown campaign: exit %d, stderr %q", code, stderr)
	}

	worker.sigterm(t, "worker")
	if !strings.Contains(worker.stderr.String(), "drained") {
		t.Errorf("worker did not announce its drain:\n%s", worker.stderr.String())
	}
	coord.sigterm(t, "coordinator")
	if !strings.Contains(coord.stderr.String(), "stopped") {
		t.Errorf("coordinator did not announce its stop:\n%s", coord.stderr.String())
	}
}

// TestGsbfleetUploadTamper: `gsbfleet upload` imports an externally-run
// shard snapshot; a tampered snapshot is rejected with exit 1, the
// intact one is accepted and auto-merges into a result — a campaign
// completed with no worker at all.
func TestGsbfleetUploadTamper(t *testing.T) {
	// A coordinator in-process (its handler on a real :0 listener).
	c, err := repro.NewFleetCoordinator(repro.FleetCoordinatorConfig{
		DataDir:        t.TempDir(),
		ReconcileEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	defer c.Close()

	// Run the identical single-shard campaign locally — the external
	// execution whose snapshot the operator imports.
	spec, build, err := repro.SelectProtocol("wsb", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "external.ckpt")
	cfg := repro.CampaignConfig{
		Protocol: "wsb", Spec: spec, Opts: repro.ExploreOptions{Seed: 1},
		Build: build, Shard: 0, Of: 1, CheckpointEvery: 50, Path: ckpt,
	}
	if _, err := repro.RunCampaign(t.Context(), cfg); err != nil {
		t.Fatalf("external campaign: %v", err)
	}

	stdout, stderr, code := runSelf(t,
		"submit", "-coordinator", srv.URL, "-protocol", "wsb", "-n", "4",
		"-mode", "exhaustive", "-seed", "1", "-shards", "1", "-every", "50", "-json")
	if code != 0 {
		t.Fatalf("submit: exit %d\n%s", code, stderr)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stdout)), &sub); err != nil {
		t.Fatalf("submit output: %v\n%s", err, stdout)
	}

	// Hand-edit the snapshot header: the upload must fail the hash check
	// with exit 1 and change nothing on the coordinator.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"seed":1`), []byte(`"seed":2`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in the snapshot header")
	}
	bad := filepath.Join(t.TempDir(), "tampered.ckpt")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := runSelf(t, "upload", "-coordinator", srv.URL, "-id", sub.ID, "-shard", "0", bad); code != 1 || !strings.Contains(stderr, "hash") {
		t.Errorf("tampered upload: exit %d, stderr %q (want exit 1 mentioning the hash)", code, stderr)
	}

	// The intact snapshot imports cleanly and completes the campaign.
	stdout, stderr, code = runSelf(t, "upload", "-coordinator", srv.URL, "-id", sub.ID, "-shard", "0", ckpt)
	if code != 0 || !strings.Contains(stdout, "done=true") {
		t.Fatalf("upload: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		stdout, stderr, code = runSelf(t, "result", "-coordinator", srv.URL, "-id", sub.ID)
		if code == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never merged: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(stdout, "verified") {
		t.Errorf("imported campaign result: %q", stdout)
	}
}
