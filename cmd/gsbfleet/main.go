// Command gsbfleet runs and drives a verification fleet: the
// distributed form of a sharded campaign (docs/fleet.md).
//
//	gsbfleet coordinator -data DIR [-listen ADDR]      # control plane
//	gsbfleet worker -coordinator URL [-work DIR]       # campaign runner
//	gsbfleet submit -coordinator URL -protocol P -n N -mode M [-shards S] [-wait]
//	gsbfleet status -coordinator URL [-json | -watch]
//	gsbfleet result -coordinator URL -id ID [-json]
//	gsbfleet upload -coordinator URL -id ID -shard I SNAPSHOT.ckpt
//
// The coordinator owns all fleet state: the campaign registry, the shard
// queue, the latest uploaded checkpoint of every shard, and the
// reconcile loop that re-deals the shard of a worker that stopped
// heartbeating or stopped making progress. Workers are stateless
// agents: kill -9 one and its shard resumes on another worker from the
// last uploaded checkpoint, with no verified run repeated or lost —
// the merged report is identical to an uninterrupted single-process
// run. SIGTERM drains a worker gracefully: its campaign pauses at the
// next checkpoint, the final snapshot is uploaded and the shard is
// released for immediate re-deal.
//
// Exit codes: 0 success/verified, 1 violation or operational error,
// 2 usage.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	switch os.Args[1] {
	case "coordinator":
		os.Exit(cmdCoordinator(os.Args[2:]))
	case "worker":
		os.Exit(cmdWorker(os.Args[2:]))
	case "submit":
		os.Exit(cmdSubmit(os.Args[2:]))
	case "status":
		os.Exit(cmdStatus(os.Args[2:]))
	case "result":
		os.Exit(cmdResult(os.Args[2:]))
	case "upload":
		os.Exit(cmdUpload(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(exitOK)
	default:
		fmt.Fprintf(os.Stderr, "gsbfleet: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(exitUsage)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gsbfleet coordinator -data DIR [-listen ADDR] [-heartbeat DUR] [-stale DUR]
  gsbfleet worker -coordinator URL [-name NAME] [-work DIR] [-poll DUR]
  gsbfleet submit -coordinator URL -protocol P -n N -mode MODE [-shards S] [-wait [-interval DUR]] [-json] [flags]
  gsbfleet status -coordinator URL [-json | -watch [-interval DUR]]
  gsbfleet result -coordinator URL -id ID [-json]
  gsbfleet upload -coordinator URL -id ID -shard I SNAPSHOT.ckpt
modes: exhaustive | por | por-memo | walk | pct | crash
run 'gsbfleet submit -h' for the submit flags`)
}

func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdCoordinator(args []string) int {
	fs := flag.NewFlagSet("gsbfleet coordinator", flag.ExitOnError)
	listen := fs.String("listen", ":8600", "address to serve the gsbfleet/v1 API on (\":0\" picks a port)")
	data := fs.String("data", "", "directory for uploaded shard snapshots (required)")
	heartbeat := fs.Duration("heartbeat", 10*time.Second, "declare a worker dead after this long without a heartbeat")
	stale := fs.Duration("stale", 2*time.Minute, "re-deal a running shard whose last upload is older than this (<0 disables)")
	fs.Parse(args)
	if *data == "" {
		fmt.Fprintln(os.Stderr, "gsbfleet coordinator: -data is required")
		return exitUsage
	}
	c, err := repro.NewFleetCoordinator(repro.FleetCoordinatorConfig{
		DataDir:          *data,
		HeartbeatTimeout: *heartbeat,
		StaleCheckpoint:  *stale,
		Logf:             func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet coordinator: %v\n", err)
		return exitFailed
	}
	defer c.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet coordinator: -listen %s: %v\n", *listen, err)
		return exitFailed
	}
	// The bound address is announced so -listen :0 is scriptable.
	fmt.Fprintf(os.Stderr, "gsbfleet: coordinator serving gsbfleet/v1 on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: c.Handler()}
	ctx, cancel := signalContext()
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "gsbfleet coordinator: %v\n", err)
		return exitFailed
	case <-ctx.Done():
	}
	shutdownCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	_ = srv.Shutdown(shutdownCtx)
	fmt.Fprintln(os.Stderr, "gsbfleet: coordinator stopped")
	return exitOK
}

func cmdWorker(args []string) int {
	fs := flag.NewFlagSet("gsbfleet worker", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required, e.g. http://localhost:8600)")
	name := fs.String("name", "", "worker label (default: hostname)")
	work := fs.String("work", "", "scratch directory for shard snapshots (default: a temp dir)")
	poll := fs.Duration("poll", 500*time.Millisecond, "lease-poll interval while idle")
	fs.Parse(args)
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "gsbfleet worker: -coordinator is required")
		return exitUsage
	}
	dir := *work
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "gsbfleet-worker-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbfleet worker: %v\n", err)
			return exitFailed
		}
		defer os.RemoveAll(dir)
	}
	w, err := repro.NewFleetWorker(repro.FleetWorkerConfig{
		Coordinator: strings.TrimRight(*coord, "/"),
		Name:        *name,
		WorkDir:     dir,
		PollEvery:   *poll,
		Logf:        func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet worker: %v\n", err)
		return exitFailed
	}
	ctx, cancel := signalContext()
	defer cancel()
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet worker: %v\n", err)
		return exitFailed
	}
	fmt.Fprintln(os.Stderr, "gsbfleet: worker drained")
	return exitOK
}

func cmdSubmit(args []string) int {
	fs := flag.NewFlagSet("gsbfleet submit", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	protocol := fs.String("protocol", "slot-renaming", "protocol to verify (see gsbrun)")
	n := fs.Int("n", 4, "number of processes")
	mode := fs.String("mode", "exhaustive", "verification mode: exhaustive | por | por-memo | walk | pct | crash")
	runs := fs.Int("runs", 0, "sampled/swept runs (walk, pct and crash modes)")
	pctDepth := fs.Int("pct-depth", 0, "PCT bug depth (pct mode; 0 = default)")
	crashProb := fs.Float64("crash", 0.05, "per-decision crash probability (crash mode)")
	model := fs.String("model", "", "memory model (empty = atomic; see gsbrun -model)")
	adversary := fs.String("adversary", "", "crash adversary (crash mode; empty = uniform-crash)")
	seed := fs.Int64("seed", 1, "campaign seed")
	maxRuns := fs.Int("maxruns", 0, "exploration run budget (0 = default)")
	maxSteps := fs.Int("maxsteps", 0, "per-run step budget (0 = default)")
	every := fs.Int("every", 0, "checkpoint (= upload) interval in runs (0 = default)")
	shards := fs.Int("shards", 1, "number of shards to deal the campaign as")
	wait := fs.Bool("wait", false, "poll until the campaign finishes and report its verdict")
	interval := fs.Duration("interval", time.Second, "poll interval for -wait")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	fs.Parse(args)
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "gsbfleet submit: -coordinator is required")
		return exitUsage
	}
	sub := repro.FleetSubmission{
		Schema: repro.FleetSchema, Protocol: *protocol, N: *n, Mode: *mode,
		Runs: *runs, PCTDepth: *pctDepth, CrashProb: *crashProb, Seed: *seed,
		Model: *model, Adversary: *adversary, MaxRuns: *maxRuns, MaxSteps: *maxSteps,
		Shards: *shards, CheckpointEvery: *every,
	}
	// Validate locally first: a typo is a usage error here, not a
	// round-trip to the coordinator.
	if err := sub.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet submit: %v\n", err)
		return exitUsage
	}
	base := strings.TrimRight(*coord, "/")
	var resp struct {
		ID     string `json:"id"`
		Shards int    `json:"shards"`
	}
	if err := postJSON(base+"/v1/campaigns", sub, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet submit: %v\n", err)
		return exitFailed
	}
	if !*wait {
		if *jsonOut {
			_ = json.NewEncoder(os.Stdout).Encode(map[string]any{
				"schema": repro.FleetSchema, "id": resp.ID, "shards": resp.Shards,
			})
		} else {
			fmt.Printf("submitted %s (%d shards)\n", resp.ID, resp.Shards)
		}
		return exitOK
	}
	fmt.Fprintf(os.Stderr, "gsbfleet: submitted %s (%d shards), waiting\n", resp.ID, resp.Shards)
	for {
		var st repro.FleetCampaignStatus
		if err := getJSON(base+"/v1/campaigns/"+resp.ID, &st); err != nil {
			fmt.Fprintf(os.Stderr, "gsbfleet submit: %v\n", err)
			return exitFailed
		}
		switch st.State {
		case "done", "failed":
			return reportCampaign(st, *jsonOut)
		}
		time.Sleep(*interval)
	}
}

// reportCampaign prints a terminal campaign status and maps it to an
// exit code the way gsbcampaign maps a report: 0 verified, 1 violation
// or failure.
func reportCampaign(st repro.FleetCampaignStatus, jsonOut bool) int {
	if jsonOut {
		_ = json.NewEncoder(os.Stdout).Encode(st)
	} else if st.State == "failed" {
		fmt.Printf("campaign %s FAILED: %s\n", st.ID, st.Error)
	} else if st.Violation != "" {
		fmt.Printf("campaign %s: VIOLATION after %d schedules: %s\n", st.ID, st.Report.Schedules, st.Violation)
	} else {
		fmt.Printf("campaign %s: verified, %d schedules (%d redeals)\n", st.ID, st.Report.Schedules, st.Redeals)
	}
	if st.State == "failed" || st.Violation != "" {
		return exitFailed
	}
	return exitOK
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("gsbfleet status", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	jsonOut := fs.Bool("json", false, "emit the raw gsbfleetstatus/v1 JSON")
	watch := fs.Bool("watch", false, "redraw the fleet status until interrupted")
	interval := fs.Duration("interval", time.Second, "refresh interval for -watch")
	fs.Parse(args)
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "gsbfleet status: -coordinator is required")
		return exitUsage
	}
	base := strings.TrimRight(*coord, "/")
	show := func() int {
		var st repro.FleetStatus
		if err := getJSON(base+"/status", &st); err != nil {
			fmt.Fprintf(os.Stderr, "gsbfleet status: %v\n", err)
			return exitFailed
		}
		if *jsonOut {
			_ = json.NewEncoder(os.Stdout).Encode(st)
		} else {
			fmt.Print(renderFleet(st))
		}
		return exitOK
	}
	if !*watch {
		return show()
	}
	ctx, cancel := signalContext()
	defer cancel()
	for {
		fmt.Print("\x1b[H\x1b[2J")
		if rc := show(); rc != exitOK {
			return rc
		}
		select {
		case <-ctx.Done():
			return exitOK
		case <-time.After(*interval):
		}
	}
}

// renderFleet formats a fleet status as an aligned text block.
func renderFleet(st repro.FleetStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d workers, shards %d queued / %d running / %d done / %d failed, %d redeals, %d runs\n",
		len(st.Workers), st.Queued, st.Running, st.Done, st.Failed, st.Redeals, st.Runs)
	for _, w := range st.Workers {
		shard := w.Shard
		if shard == "" {
			shard = "idle"
		}
		drain := ""
		if w.Draining {
			drain = " draining"
		}
		fmt.Fprintf(&b, "  worker %-16s %-12s beat %.1fs ago%s\n", w.Name, shard, w.HeartbeatAgeSec, drain)
	}
	for _, c := range st.Campaigns {
		fmt.Fprintf(&b, "  campaign %s %-8s %s mode=%s shards=%d runs=%d",
			c.ID, c.State, c.Task, c.Submission.Mode, len(c.Shards), c.Runs)
		if c.RunsPerSec > 0 && !c.Done {
			fmt.Fprintf(&b, " %.0f runs/s", c.RunsPerSec)
		}
		if c.ETASec > 0 && !c.Done {
			fmt.Fprintf(&b, " eta %s", (time.Duration(c.ETASec * float64(time.Second))).Round(time.Second))
		}
		if c.Redeals > 0 {
			fmt.Fprintf(&b, " redeals=%d", c.Redeals)
		}
		if c.Violation != "" {
			fmt.Fprintf(&b, " VIOLATION: %s", c.Violation)
		}
		if c.Error != "" {
			fmt.Fprintf(&b, " error: %s", c.Error)
		}
		b.WriteByte('\n')
		for _, sh := range c.Shards {
			fmt.Fprintf(&b, "    shard %d %-8s runs=%d redeals=%d", sh.Shard, sh.State, sh.Runs, sh.Redeals)
			if sh.Worker != "" {
				fmt.Fprintf(&b, " on %s", sh.Worker)
			}
			if sh.Error != "" {
				fmt.Fprintf(&b, " error: %s", sh.Error)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func cmdResult(args []string) int {
	fs := flag.NewFlagSet("gsbfleet result", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	id := fs.String("id", "", "campaign id (required)")
	jsonOut := fs.Bool("json", false, "emit the full campaign status JSON")
	fs.Parse(args)
	if *coord == "" || *id == "" {
		fmt.Fprintln(os.Stderr, "gsbfleet result: -coordinator and -id are required")
		return exitUsage
	}
	var st repro.FleetCampaignStatus
	if err := getJSON(strings.TrimRight(*coord, "/")+"/v1/campaigns/"+*id+"/result", &st); err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet result: %v\n", err)
		return exitFailed
	}
	return reportCampaign(st, *jsonOut)
}

func cmdUpload(args []string) int {
	fs := flag.NewFlagSet("gsbfleet upload", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required)")
	id := fs.String("id", "", "campaign id (required)")
	shard := fs.Int("shard", -1, "shard index the snapshot belongs to (required)")
	fs.Parse(args)
	if *coord == "" || *id == "" || *shard < 0 || fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "gsbfleet upload: need -coordinator, -id, -shard and one snapshot file")
		return exitUsage
	}
	path := fs.Arg(0)
	snap, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet upload: %v\n", err)
		return exitFailed
	}
	side, err := os.ReadFile(repro.TimelineSidecarPath(path))
	if err != nil && !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "gsbfleet upload: %v\n", err)
		return exitFailed
	}
	req := map[string]any{"schema": repro.FleetSchema, "snapshot": snap}
	if len(side) > 0 {
		req["timeline"] = side
	}
	var resp struct {
		Done bool  `json:"done"`
		Runs int64 `json:"runs"`
	}
	url := fmt.Sprintf("%s/v1/campaigns/%s/shards/%d/snapshot", strings.TrimRight(*coord, "/"), *id, *shard)
	if err := postJSON(url, req, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "gsbfleet upload: %v\n", err)
		return exitFailed
	}
	fmt.Printf("imported %s shard %d at %d runs (done=%v)\n", *id, *shard, resp.Runs, resp.Done)
	return exitOK
}

var httpClient = &http.Client{Timeout: 30 * time.Second}

func postJSON(url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := httpClient.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func getJSON(url string, out any) error {
	resp, err := httpClient.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return errors.New(ae.Error)
		}
		return fmt.Errorf("coordinator returned %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
