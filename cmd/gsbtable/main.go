// Command gsbtable regenerates Table 1 of the paper: the kernel vectors
// of every feasible <n,m,l,u>-GSB task, with canonical representatives
// marked. Defaults reproduce the paper's n=6, m=3 table.
//
// Usage:
//
//	gsbtable [-n 6] [-m 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	n := flag.Int("n", 6, "number of processes")
	m := flag.Int("m", 3, "number of output values")
	flag.Parse()
	if *n < 1 || *m < 1 {
		fmt.Fprintln(os.Stderr, "gsbtable: need n >= 1 and m >= 1")
		os.Exit(2)
	}
	fmt.Print(repro.Table1(*n, *m))
}
