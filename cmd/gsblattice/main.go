// Command gsblattice regenerates Figure 1 of the paper: the canonical
// representatives of the <n,m,-,-> GSB family and the Hasse diagram of
// strict inclusion between their output-vector sets. Defaults reproduce
// the paper's n=6, m=3 figure; -dot emits Graphviz.
//
// Usage:
//
//	gsblattice [-n 6] [-m 3] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	n := flag.Int("n", 6, "number of processes")
	m := flag.Int("m", 3, "number of output values")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of text")
	flag.Parse()
	if *n < 1 || *m < 1 {
		fmt.Fprintln(os.Stderr, "gsblattice: need n >= 1 and m >= 1")
		os.Exit(2)
	}
	if *dot {
		fmt.Print(repro.Figure1DOT(*n, *m))
		return
	}
	fmt.Print(repro.Figure1Text(*n, *m))
}
