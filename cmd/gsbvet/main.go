// Command gsbvet runs the project's static-analysis suite (internal/lint)
// over the tree: determinism, optionshash, statefield, hotpath,
// statshandle, annotations. It is the mechanical enforcement of the
// engine contracts documented in docs/static-analysis.md, and it builds
// from the tree with no network fetch — `go run ./cmd/gsbvet ./...` is
// all CI needs.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gsbvet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the gsbvet analyzers over the given go-list patterns (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s", a.Name, a.Doc)
			if a.Suppressor != "" {
				fmt.Printf(" [suppress: //gsb:%s <reason>]", a.Suppressor)
			}
			fmt.Println()
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPatterns(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbvet: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "gsbvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}
