package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGsbvetExitCodes builds the driver from the tree and checks the exit
// contract end to end: 0 and silence on the clean tree, 1 and a finding
// on the deliberately broken testdata fixture (which ./... does not see,
// keeping the clean run honest), 2 on a pattern that does not load.
func TestGsbvetExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the driver as a subprocess")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "gsbvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/gsbvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gsbvet: %v\n%s", err, out)
	}

	run := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running gsbvet %v: %v\n%s", args, err, out)
		}
		return string(out), ee.ExitCode()
	}

	if out, code := run("./..."); code != 0 {
		t.Errorf("gsbvet ./... on the tree: exit %d, want 0\n%s", code, out)
	} else if strings.TrimSpace(out) != "" {
		t.Errorf("gsbvet ./... on the clean tree printed output:\n%s", out)
	}

	out, code := run("./internal/lint/testdata/src/badhotpath")
	if code != 1 {
		t.Errorf("gsbvet on badhotpath: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "make in hotpath func leaky") || !strings.Contains(out, "(hotpath)") {
		t.Errorf("gsbvet on badhotpath did not report the planted finding:\n%s", out)
	}

	if out, code := run("./does/not/exist"); code != 2 {
		t.Errorf("gsbvet on a bad pattern: exit %d, want 2\n%s", code, out)
	}

	if out, code := run("-list"); code != 0 || !strings.Contains(out, "determinism") {
		t.Errorf("gsbvet -list: exit %d\n%s", code, out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
