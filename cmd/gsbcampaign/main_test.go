package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestMain(m *testing.M) {
	if os.Getenv("GSB_CLI_UNDER_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "GSB_CLI_UNDER_TEST=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("exec: %v", err)
	}
	return out.String(), errb.String(), code
}

// TestGsbcampaignInvalidUsage: every malformed invocation exits with the
// usage code (2) or the failure code (1) and a diagnostic — never a
// panic, never code 0.
func TestGsbcampaignInvalidUsage(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "missing.ckpt")
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantMsg  string
	}{
		{"no-command", nil, 2, "usage"},
		{"unknown-command", []string{"explode"}, 2, "unknown command"},
		{"start-no-ckpt", []string{"start"}, 2, "-ckpt is required"},
		{"start-bad-mode", []string{"start", "-ckpt", missing, "-mode", "bogus"}, 2, "unknown mode"},
		{"start-walk-no-runs", []string{"start", "-ckpt", missing, "-mode", "walk"}, 2, "needs -runs"},
		{"start-bad-shard", []string{"start", "-ckpt", missing, "-shard", "3/2"}, 2, "-shard wants i/m"},
		{"start-shard-not-a-pair", []string{"start", "-ckpt", missing, "-shard", "x"}, 2, "-shard wants i/m"},
		{"start-n-too-small", []string{"start", "-ckpt", missing, "-n", "1"}, 2, "need n >= 2"},
		{"start-bad-protocol", []string{"start", "-ckpt", missing, "-protocol", "bogus"}, 2, "unknown protocol"},
		{"start-undefined-flag", []string{"start", "-bogus"}, 2, "flag provided but not defined"},
		{"start-bad-crash-prob", []string{"start", "-ckpt", missing, "-mode", "crash", "-runs", "10", "-crash", "1.5"}, 1, "outside [0, 1]"},
		{"resume-no-ckpt", []string{"resume"}, 2, "-ckpt is required"},
		{"resume-missing-file", []string{"resume", "-ckpt", missing}, 1, "no such file"},
		{"status-no-ckpt", []string{"status"}, 2, "-ckpt is required"},
		{"status-missing-file", []string{"status", "-ckpt", missing}, 1, "no such file"},
		{"merge-no-paths", []string{"merge"}, 2, "at least one snapshot"},
		{"merge-missing-file", []string{"merge", missing}, 1, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runSelf(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("args %v: exit %d, want %d\nstdout: %s\nstderr: %s", tc.args, code, tc.wantCode, stdout, stderr)
			}
			if !strings.Contains(strings.ToLower(stderr), strings.ToLower(tc.wantMsg)) {
				t.Errorf("args %v: stderr %q does not mention %q", tc.args, stderr, tc.wantMsg)
			}
		})
	}
}

// TestGsbcampaignLifecycle drives a small campaign through the CLI:
// start to completion, refuse to restart over the snapshot, status,
// resume-after-done, a 2-shard split and merge — checking the JSON
// record schema and the shard/merge count consistency along the way.
func TestGsbcampaignLifecycle(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.ckpt")
	base := []string{"-protocol", "wsb", "-n", "4", "-mode", "por", "-seed", "1"}

	stdout, stderr, code := runSelf(t, append([]string{"start", "-ckpt", ckpt, "-json"}, base...)...)
	if code != 0 {
		t.Fatalf("start: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(stdout)), &rec); err != nil {
		t.Fatalf("start output is not JSON: %v\n%s", err, stdout)
	}
	if rec["schema"] != "gsbcampaign/v1" || rec["done"] != true {
		t.Fatalf("start record: %v", rec)
	}
	schedules := rec["schedules"].(float64)
	if schedules <= 0 {
		t.Fatalf("start verified no schedules: %v", rec)
	}

	if _, stderr, code := runSelf(t, append([]string{"start", "-ckpt", ckpt}, base...)...); code != 1 || !strings.Contains(stderr, "already exists") {
		t.Errorf("restart over an existing snapshot: exit %d, stderr %q", code, stderr)
	}

	stdout, _, code = runSelf(t, "status", "-ckpt", ckpt)
	if code != 0 || !strings.Contains(stdout, "done") || !strings.Contains(stdout, "verified") {
		t.Errorf("status: exit %d\n%s", code, stdout)
	}

	stdout, stderr, code = runSelf(t, "resume", "-ckpt", ckpt, "-json")
	if code != 0 {
		t.Fatalf("resume after done: exit %d\nstderr: %s", code, stderr)
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stdout)), &rec); err != nil || rec["schedules"].(float64) != schedules {
		t.Errorf("resume after done: %v (err %v), want %v schedules", rec, err, schedules)
	}

	// 2-shard split + merge reproduces the single-shard count.
	paths := []string{filepath.Join(dir, "s0.ckpt"), filepath.Join(dir, "s1.ckpt")}
	for s, p := range paths {
		args := append([]string{"start", "-ckpt", p, "-shard", []string{"0/2", "1/2"}[s], "-json"}, base...)
		if stdout, stderr, code := runSelf(t, args...); code != 0 {
			t.Fatalf("shard %d: exit %d\nstdout: %s\nstderr: %s", s, code, stdout, stderr)
		}
	}
	stdout, stderr, code = runSelf(t, "merge", "-json", paths[0], paths[1])
	if code != 0 {
		t.Fatalf("merge: exit %d\nstderr: %s", code, stderr)
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stdout)), &rec); err != nil {
		t.Fatalf("merge output is not JSON: %v\n%s", err, stdout)
	}
	if rec["schedules"].(float64) != schedules || rec["done"] != true {
		t.Errorf("merge record %v, want %v schedules", rec, schedules)
	}

	// Merging a shard set with a missing member fails loudly.
	if _, stderr, code := runSelf(t, "merge", paths[0]); code != 1 || !strings.Contains(stderr, "shard") {
		t.Errorf("merge of an incomplete shard set: exit %d, stderr %q", code, stderr)
	}
}

// TestGsbcampaignBadResumeTamper: a snapshot whose header was edited
// after the fact fails the hash check on resume — the loud-failure
// contract for drifted or corrupted campaign state.
func TestGsbcampaignBadResumeTamper(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.ckpt")
	if _, stderr, code := runSelf(t, "start", "-ckpt", ckpt, "-protocol", "wsb", "-n", "4", "-mode", "por"); code != 0 {
		t.Fatalf("start: exit %d\n%s", code, stderr)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"seed":1`), []byte(`"seed":2`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in the snapshot header")
	}
	if err := os.WriteFile(ckpt, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := runSelf(t, "resume", "-ckpt", ckpt); code != 1 || !strings.Contains(stderr, "hash") {
		t.Errorf("resume of a tampered snapshot: exit %d, stderr %q", code, stderr)
	}
}

// TestGsbcampaignMergeTimeline: every CLI campaign leaves a timeline
// sidecar next to its snapshot, and `merge -timeline FILE` interleaves
// the shard sidecars into one campaign-wide gsbtimeline/v1 NDJSON file.
func TestGsbcampaignMergeTimeline(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-protocol", "wsb", "-n", "4", "-mode", "por", "-seed", "1"}
	paths := []string{filepath.Join(dir, "s0.ckpt"), filepath.Join(dir, "s1.ckpt")}
	for s, p := range paths {
		args := append([]string{"start", "-ckpt", p, "-shard", []string{"0/2", "1/2"}[s], "-json"}, base...)
		if stdout, stderr, code := runSelf(t, args...); code != 0 {
			t.Fatalf("shard %d: exit %d\nstdout: %s\nstderr: %s", s, code, stdout, stderr)
		}
		if _, err := os.Stat(repro.TimelineSidecarPath(p)); err != nil {
			t.Fatalf("shard %d left no timeline sidecar: %v", s, err)
		}
	}
	out := filepath.Join(dir, "campaign.timeline")
	_, stderr, code := runSelf(t, "merge", "-timeline", out, paths[0], paths[1])
	if code != 0 {
		t.Fatalf("merge: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "merged timeline") {
		t.Errorf("merge did not announce the merged timeline: %q", stderr)
	}
	recs, err := repro.ReadTimeline(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("merged timeline has %d samples, want one per shard at least", len(recs))
	}
	shards := map[int]bool{}
	for _, r := range recs {
		if r.Schema != "gsbtimeline/v1" {
			t.Fatalf("merged record schema %q", r.Schema)
		}
		shards[r.Shard] = true
	}
	if !shards[0] || !shards[1] {
		t.Errorf("merged timeline covers shards %v, want both", shards)
	}
}

// TestSparkline pins the watch sparkline rendering: runs by default,
// classes preferred when the mode counts them, empty when there is
// nothing to draw, last-w truncation.
func TestSparkline(t *testing.T) {
	if s := sparkline(nil, 8); s != "" {
		t.Errorf("empty timeline sparkline = %q", s)
	}
	if s := sparkline([]repro.TimelineRecord{{Runs: 0}}, 8); s != "" {
		t.Errorf("all-zero sparkline = %q", s)
	}
	runs := []repro.TimelineRecord{{Runs: 0}, {Runs: 50}, {Runs: 100}}
	if s := sparkline(runs, 8); s != "▁▄█" {
		t.Errorf("runs sparkline = %q, want ▁▄█", s)
	}
	classes := []repro.TimelineRecord{{Runs: 100, Classes: 10}, {Runs: 200, Classes: 40}}
	if s := sparkline(classes, 8); s != "▂█" {
		t.Errorf("classes sparkline = %q, want ▂█", s)
	}
	if s := sparkline(runs, 2); s != "▄█" {
		t.Errorf("truncated sparkline = %q, want the last 2 samples", s)
	}
}

// TestShardTotalOf mirrors the library's shard split: seeded modes
// divide their run budget across shards, enumerating modes have no
// up-front total.
func TestShardTotalOf(t *testing.T) {
	h := func(mode repro.CampaignMode, runs, shard, of int) repro.CampaignHeader {
		hh := repro.CampaignHeader{Mode: mode, Shard: shard, Of: of}
		if mode == repro.CampaignCrash {
			hh.Options.CrashRuns = runs
		} else {
			hh.Options.SampleRuns = runs
		}
		return hh
	}
	cases := []struct {
		name string
		h    repro.CampaignHeader
		want int64
	}{
		{"walk-shard0", h(repro.CampaignWalk, 10, 0, 3), 4},
		{"walk-shard1", h(repro.CampaignWalk, 10, 1, 3), 3},
		{"walk-shard2", h(repro.CampaignWalk, 10, 2, 3), 3},
		{"pct", h(repro.CampaignPCT, 6, 0, 2), 3},
		{"crash", h(repro.CampaignCrash, 7, 1, 2), 3},
		{"exhaustive-unknown", h(repro.CampaignExhaustive, 0, 0, 1), 0},
		{"por-unknown", h(repro.CampaignPOR, 0, 0, 1), 0},
	}
	for _, tc := range cases {
		if got := shardTotalOf(tc.h); got != tc.want {
			t.Errorf("%s: shardTotalOf = %d, want %d", tc.name, got, tc.want)
		}
	}
}
