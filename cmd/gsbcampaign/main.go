// Command gsbcampaign runs durable, resumable, shardable verification
// campaigns: any of the repository's verification modes (exhaustive or
// partial-order-reduced exploration, random-walk or PCT sampling, crash
// sweeps) executed with periodic checkpoints to a versioned snapshot
// file, so a long run survives kills, splits across machines, and merges
// back into exactly the report an uninterrupted single process produces.
//
// Usage:
//
//	gsbcampaign start  -ckpt run.ckpt -protocol slot-renaming -n 4 -mode por [-every 5000] [-shard 0/3]
//	gsbcampaign resume -ckpt run.ckpt [-workers 8] [-every 5000]
//	gsbcampaign status -ckpt run.ckpt [-json | -watch [-interval 2s]]
//	gsbcampaign merge  shard0.ckpt shard1.ckpt shard2.ckpt
//
// Modes (-mode): exhaustive, por, por-memo (enumerating; one schedule
// per interleaving / trace class), walk, pct (statistical sampling of
// -runs schedules), crash (randomized crash sweep of -runs runs).
//
// The execution model is a campaign axis (docs/models.md): -model picks
// the memory model the shared registers and snapshots execute under
// (atomic, regular, safe, stale-snapshot) and -adversary picks the
// crash-sweep strategy (uniform-crash, t-resilient, adaptive; crash mode
// only). Both are part of the snapshot's options hash: shards of one
// campaign must agree on them, and resuming under a changed model or
// adversary fails loudly.
//
// Observability (docs/metrics.md): start and resume take -metrics ADDR
// (serve a live HTML coverage dashboard at /, Prometheus /metrics, a
// gsbstatus/v1 JSON /status endpoint, and the gsbtimeline/v1 series at
// /timeline) and -progress DUR (write a gsbprogress/v1 NDJSON record to
// stderr every DUR; 0 disables). Counters are cumulative across resumed
// lives — they are checkpointed with the engine state, and each
// checkpoint write also appends one timeline sample to the snapshot's
// NDJSON sidecar (<ckpt>.timeline), so a kill/resume sequence yields one
// continuous coverage timeline. `status -watch` renders live progress
// for a running (or finished) campaign by polling its snapshot file,
// with a sparkline of the sidecar's coverage curve and an ETA when the
// mode's total is known up front. `merge -timeline FILE` interleaves the
// shard sidecars into one campaign-wide timeline.
//
// SIGINT/SIGTERM pause the campaign at the next checkpoint boundary: the
// engine stops claiming new work, finishes the runs in flight, writes the
// snapshot, and exits with code 3. A SIGKILL (or power loss) loses at
// most the work since the last periodic checkpoint — `resume` continues
// from the snapshot exactly, never re-counting or skipping a schedule.
// Resuming under changed campaign options fails loudly (the snapshot
// header carries an options hash); worker count and checkpoint interval
// may change freely across resumes.
//
// Exit codes: 0 verified, 1 violation or operational error, 2 usage,
// 3 paused at a checkpoint (resume to continue).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
)

// recordSchema versions the -json output records of start/resume/merge.
const recordSchema = "gsbcampaign/v1"

// record is the machine-readable outcome of a campaign command.
type record struct {
	Schema string `json:"schema"`
	repro.CampaignReport
	Paused bool   `json:"paused,omitempty"`
	Error  string `json:"error,omitempty"`
}

const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
	exitPaused = 3
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	switch os.Args[1] {
	case "start":
		os.Exit(cmdStart(os.Args[2:]))
	case "resume":
		os.Exit(cmdResume(os.Args[2:]))
	case "status":
		os.Exit(cmdStatus(os.Args[2:]))
	case "merge":
		os.Exit(cmdMerge(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(exitOK)
	default:
		fmt.Fprintf(os.Stderr, "gsbcampaign: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(exitUsage)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gsbcampaign start  -ckpt FILE -protocol NAME -n N -mode MODE [-metrics ADDR] [-progress DUR] [flags]
  gsbcampaign resume -ckpt FILE [-workers W] [-every RUNS] [-metrics ADDR] [-progress DUR] [-json]
  gsbcampaign status -ckpt FILE [-json | -watch [-interval DUR]]
  gsbcampaign merge  [-json] [-timeline FILE] SHARD.ckpt...
modes: exhaustive | por | por-memo | walk | pct | crash
run 'gsbcampaign start -h' for the start flags`)
}

// parseShard parses "i/m" into (shard, of).
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard wants i/m (e.g. 0/3), got %q", s)
	}
	shard, err1 := strconv.Atoi(s[:i])
	of, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || of < 1 || shard < 0 || shard >= of {
		return 0, 0, fmt.Errorf("-shard wants i/m with 0 <= i < m, got %q", s)
	}
	return shard, of, nil
}

// optionsForMode builds the campaign's exploration options. model and
// adversary are registry names (repro.MemModels, repro.Adversaries);
// empty means the default. Both are validated here so a typo is a usage
// error before any snapshot file is touched, and both become part of the
// snapshot's options hash — a resume under a changed model fails loudly.
func optionsForMode(mode string, runs, pctDepth, workers, maxRuns, maxSteps int, seed int64, crashProb float64, model, adversary string) (repro.ExploreOptions, error) {
	opts := repro.ExploreOptions{Workers: workers, Seed: seed, MaxRuns: maxRuns, MaxSteps: maxSteps}
	if _, err := repro.MemModelByName(model); err != nil {
		return opts, err
	}
	if _, err := repro.AdversaryByName(adversary); err != nil {
		return opts, err
	}
	if adversary != "" && mode != "crash" {
		return opts, fmt.Errorf("-adversary selects a crash-sweep strategy and needs -mode crash, got -mode %s", mode)
	}
	opts.Model = model
	opts.Adversary = adversary
	switch mode {
	case "exhaustive":
	case "por":
		opts.Reduction = repro.ReductionSleepSets
	case "por-memo":
		opts.Reduction = repro.ReductionSleepMemo
	case "walk":
		opts.SampleRuns = runs
	case "pct":
		opts.SampleRuns = runs
		opts.SampleMode = repro.SamplePCT
		opts.Depth = pctDepth
	case "crash":
		opts.CrashRuns = runs
		opts.CrashProb = crashProb
	default:
		return opts, fmt.Errorf("unknown mode %q (want exhaustive, por, por-memo, walk, pct or crash)", mode)
	}
	if (mode == "walk" || mode == "pct" || mode == "crash") && runs <= 0 {
		return opts, fmt.Errorf("mode %s needs -runs > 0", mode)
	}
	return opts, nil
}

// signalContext returns a context canceled by SIGINT/SIGTERM: the
// campaign loop sees the cancellation as a pause request and writes a
// checkpoint before exiting.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// startObservability attaches the live observability surfaces to obs: an
// HTTP listener serving /metrics and /status when addr is non-empty (the
// bound address is announced on stderr, so ":0" works), and a
// gsbprogress/v1 NDJSON ticker on stderr when every > 0 (plus one final
// record at stop, so short campaigns still log their outcome). The
// returned stop function shuts both down.
func startObservability(obs *repro.CampaignObserver, addr string, every time.Duration) (func(), error) {
	var ln net.Listener
	if addr != "" {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("-metrics %s: %w", addr, err)
		}
		fmt.Fprintf(os.Stderr, "gsbcampaign: serving /metrics and /status on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: obs.Handler()}
		go func() { _ = srv.Serve(ln) }()
	}
	stopTick := make(chan struct{})
	doneTick := make(chan struct{})
	if every > 0 {
		go func() {
			defer close(doneTick)
			t := time.NewTicker(every)
			defer t.Stop()
			enc := json.NewEncoder(os.Stderr)
			for {
				select {
				case <-t.C:
					_ = enc.Encode(obs.Progress())
				case <-stopTick:
					_ = enc.Encode(obs.Progress())
					return
				}
			}
		}()
	} else {
		close(doneTick)
	}
	return func() {
		close(stopTick)
		<-doneTick
		if ln != nil {
			ln.Close()
		}
	}, nil
}

func cmdStart(args []string) int {
	fs := flag.NewFlagSet("gsbcampaign start", flag.ExitOnError)
	ckpt := fs.String("ckpt", "", "snapshot file (required)")
	protocol := fs.String("protocol", "slot-renaming", "protocol to verify (see gsbrun)")
	n := fs.Int("n", 4, "number of processes")
	mode := fs.String("mode", "exhaustive", "verification mode: exhaustive | por | por-memo | walk | pct | crash")
	runs := fs.Int("runs", 0, "sampled/swept runs (walk, pct and crash modes)")
	pctDepth := fs.Int("pct-depth", 0, "PCT bug depth (pct mode; 0 = default)")
	crashProb := fs.Float64("crash", 0.05, "per-decision crash probability (crash mode)")
	model := fs.String("model", "", "memory model for shared registers/snapshots (empty = atomic; see gsbrun -model)")
	adversary := fs.String("adversary", "", "crash adversary for crash mode (empty = uniform-crash; see gsbrun -adversary)")
	seed := fs.Int64("seed", 1, "campaign seed (oracle draws and per-run schedule seeds)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	maxRuns := fs.Int("maxruns", 0, "exploration run budget (0 = default)")
	maxSteps := fs.Int("maxsteps", 0, "per-run step budget (0 = default)")
	every := fs.Int("every", 0, "checkpoint interval in runs (0 = default)")
	shardSpec := fs.String("shard", "", "run shard i of m (\"i/m\"); every shard gets its own -ckpt file")
	force := fs.Bool("force", false, "overwrite an existing snapshot file")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON record")
	metricsAddr := fs.String("metrics", "", "serve Prometheus /metrics and JSON /status on this address (e.g. :9090)")
	progress := fs.Duration("progress", 0, "write a gsbprogress/v1 NDJSON record to stderr every DUR (0 disables)")
	fs.Parse(args)

	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "gsbcampaign start: -ckpt is required")
		return exitUsage
	}
	if *n < 2 {
		fmt.Fprintln(os.Stderr, "gsbcampaign start: need n >= 2")
		return exitUsage
	}
	shard, of, err := parseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign start: %v\n", err)
		return exitUsage
	}
	opts, err := optionsForMode(*mode, *runs, *pctDepth, *workers, *maxRuns, *maxSteps, *seed, *crashProb, *model, *adversary)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign start: %v\n", err)
		return exitUsage
	}
	spec, build, err := repro.SelectProtocol(*protocol, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign start: %v\n", err)
		return exitUsage
	}
	cfg := repro.CampaignConfig{
		Protocol: *protocol, Spec: spec, Opts: opts, Build: build,
		Shard: shard, Of: of, CheckpointEvery: *every, Path: *ckpt, Force: *force,
	}
	obs := repro.NewCampaignObserver()
	cfg.Observer = obs
	stop, err := startObservability(obs, *metricsAddr, *progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign start: %v\n", err)
		return exitUsage
	}
	ctx, cancel := signalContext()
	defer cancel()
	rep, err := repro.RunCampaign(ctx, cfg)
	stop()
	return report(rep, err, *jsonOut)
}

// resumeConfig rebuilds a campaign config from a snapshot header: the
// protocol registry plus the header's recorded options. The library
// re-verifies the options hash, so drift between the snapshot and this
// binary's protocol definitions fails loudly.
func resumeConfig(path string, workers, every int) (repro.CampaignConfig, error) {
	h, err := repro.CampaignStatus(path)
	if err != nil {
		return repro.CampaignConfig{}, err
	}
	opts := h.ExploreOptions()
	opts.Workers = workers
	spec, build, err := repro.SelectProtocol(h.Protocol, h.N, opts.Seed)
	if err != nil {
		return repro.CampaignConfig{}, fmt.Errorf("snapshot protocol: %w", err)
	}
	return repro.CampaignConfig{
		Protocol: h.Protocol, Spec: spec, IDs: h.IDs, Opts: opts, Build: build,
		Shard: h.Shard, Of: h.Of, CheckpointEvery: every, Path: path,
	}, nil
}

func cmdResume(args []string) int {
	fs := flag.NewFlagSet("gsbcampaign resume", flag.ExitOnError)
	ckpt := fs.String("ckpt", "", "snapshot file (required)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	every := fs.Int("every", 0, "checkpoint interval in runs (0 = default)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON record")
	metricsAddr := fs.String("metrics", "", "serve Prometheus /metrics and JSON /status on this address (e.g. :9090)")
	progress := fs.Duration("progress", 0, "write a gsbprogress/v1 NDJSON record to stderr every DUR (0 disables)")
	fs.Parse(args)

	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "gsbcampaign resume: -ckpt is required")
		return exitUsage
	}
	cfg, err := resumeConfig(*ckpt, *workers, *every)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign resume: %v\n", err)
		return exitFailed
	}
	obs := repro.NewCampaignObserver()
	cfg.Observer = obs
	stop, err := startObservability(obs, *metricsAddr, *progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign resume: %v\n", err)
		return exitUsage
	}
	ctx, cancel := signalContext()
	defer cancel()
	rep, err := repro.ResumeCampaign(ctx, cfg)
	stop()
	return report(rep, err, *jsonOut)
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("gsbcampaign status", flag.ExitOnError)
	ckpt := fs.String("ckpt", "", "snapshot file (required)")
	jsonOut := fs.Bool("json", false, "emit the snapshot header as JSON")
	watch := fs.Bool("watch", false, "poll the snapshot and render live progress until the campaign finishes")
	interval := fs.Duration("interval", 2*time.Second, "poll interval for -watch")
	fs.Parse(args)

	if *ckpt == "" {
		fmt.Fprintln(os.Stderr, "gsbcampaign status: -ckpt is required")
		return exitUsage
	}
	if *watch {
		return watchStatus(*ckpt, *interval)
	}
	h, err := repro.CampaignStatus(*ckpt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign status: %v\n", err)
		return exitFailed
	}
	if *jsonOut {
		b, jerr := json.Marshal(h)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "gsbcampaign status: %v\n", jerr)
			return exitFailed
		}
		fmt.Println(string(b))
		return exitOK
	}
	state := "in progress"
	if h.Done {
		state = "done"
	}
	fmt.Printf("campaign %s shard %d/%d: %s on %s (n=%d, seed %d, hash %s)\n",
		h.Mode, h.Shard, h.Of, state, h.Task, h.N, h.Options.Seed, h.OptionsHash)
	fmt.Printf("  protocol %s, %d runs done", h.Protocol, h.Runs)
	if h.Frontier > 0 {
		fmt.Printf(", %d frontier prefixes unexplored", h.Frontier)
	}
	fmt.Printf(", updated %s\n", h.Updated)
	if h.Result != nil {
		if h.Result.Violation != "" {
			fmt.Printf("  verdict: VIOLATION after %d schedules: %s\n", h.Result.Schedules, h.Result.Violation)
		} else {
			fmt.Printf("  verdict: %d schedules verified\n", h.Result.Schedules)
		}
	}
	return exitOK
}

// shardTotalOf mirrors the campaign library's shard split: the number
// of seeded runs this shard owns, 0 when the total is unknowable up
// front (the enumerating modes discover their tree as they walk it).
func shardTotalOf(h repro.CampaignHeader) int64 {
	total := 0
	switch h.Mode {
	case repro.CampaignWalk, repro.CampaignPCT:
		total = h.Options.SampleRuns
	case repro.CampaignCrash:
		total = h.Options.CrashRuns
	}
	if total <= h.Shard {
		return 0
	}
	return int64((total-h.Shard-1)/h.Of + 1)
}

// sparkline renders the timeline's coverage-growth curve — distinct
// trace classes when the mode counts them, verified runs otherwise — as
// a string of spark characters over the last w samples.
func sparkline(recs []repro.TimelineRecord, w int) string {
	if len(recs) == 0 {
		return ""
	}
	useClasses := recs[len(recs)-1].Classes > 0
	vals := make([]int64, 0, len(recs))
	for _, r := range recs {
		if useClasses {
			vals = append(vals, r.Classes)
		} else {
			vals = append(vals, r.Runs)
		}
	}
	if len(vals) > w {
		vals = vals[len(vals)-w:]
	}
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		b.WriteRune(ticks[int(v*int64(len(ticks)-1)/max)])
	}
	return b.String()
}

// watchStatus polls the snapshot header and prints one progress line per
// tick until the campaign finishes. It follows a campaign run by another
// process (the writer replaces the file atomically, so every read sees a
// consistent snapshot). Each line carries a sparkline of the coverage
// curve from the snapshot's timeline sidecar (when one exists), the
// current rate — the sidecar's last in-process runs/sec sample when
// available, successive header run counts (checkpoint-granular)
// otherwise — and, for seeded modes whose total is known up front, an
// ETA. Ctrl-C stops the watch without touching the campaign.
func watchStatus(path string, interval time.Duration) int {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ctx, cancel := signalContext()
	defer cancel()
	var lastRuns int64 = -1
	var lastTime time.Time
	for {
		h, err := repro.CampaignStatus(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbcampaign status: %v\n", err)
			return exitFailed
		}
		// The sidecar is best-effort: campaigns run without an observer
		// (or pre-timeline snapshots) simply have none.
		recs, _ := repro.ReadTimeline(repro.TimelineSidecarPath(path))
		now := time.Now()
		var rateVal float64
		if len(recs) > 0 && recs[len(recs)-1].RunsPerSec > 0 {
			rateVal = recs[len(recs)-1].RunsPerSec
		} else if lastRuns >= 0 && h.Runs > lastRuns && now.After(lastTime) {
			rateVal = float64(h.Runs-lastRuns) / now.Sub(lastTime).Seconds()
		}
		rate := ""
		if rateVal > 0 {
			rate = fmt.Sprintf(", %.0f runs/sec", rateVal)
		}
		eta := ""
		if total := shardTotalOf(h); !h.Done && total > 0 && rateVal > 0 {
			if left := total - h.Runs; left > 0 {
				d := time.Duration(float64(left) / rateVal * float64(time.Second))
				eta = fmt.Sprintf(", ETA %s", d.Round(time.Second))
			}
		}
		line := fmt.Sprintf("%s shard %d/%d on %s: %d runs", h.Mode, h.Shard, h.Of, h.Task, h.Runs)
		if h.Frontier > 0 {
			line += fmt.Sprintf(", %d frontier prefixes", h.Frontier)
		}
		if spark := sparkline(recs, 32); spark != "" {
			line = spark + "  " + line
		}
		fmt.Printf("%s%s%s (checkpoint %s)\n", line, rate, eta, h.Updated)
		if h.Done {
			if h.Result != nil && h.Result.Violation != "" {
				fmt.Printf("verdict: VIOLATION after %d schedules: %s\n", h.Result.Schedules, h.Result.Violation)
				return exitFailed
			}
			if h.Result != nil {
				fmt.Printf("verdict: %d schedules verified\n", h.Result.Schedules)
			}
			return exitOK
		}
		lastRuns, lastTime = h.Runs, now
		select {
		case <-ctx.Done():
			return exitOK
		case <-time.After(interval):
		}
	}
}

func cmdMerge(args []string) int {
	fs := flag.NewFlagSet("gsbcampaign merge", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON record")
	workers := fs.Int("workers", 0, "worker goroutines for the merge's counting pass (0 = GOMAXPROCS)")
	timelineOut := fs.String("timeline", "", "also merge the shards' timeline sidecars into one campaign-wide NDJSON timeline at FILE")
	fs.Parse(args)
	paths := fs.Args()

	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "gsbcampaign merge: need at least one snapshot path")
		return exitUsage
	}
	cfg, err := resumeConfig(paths[0], *workers, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbcampaign merge: %v\n", err)
		return exitFailed
	}
	rep, err := repro.MergeCampaigns(context.Background(), cfg, paths)
	if *timelineOut != "" && err == nil {
		if merr := mergeTimelines(paths, *timelineOut); merr != nil {
			fmt.Fprintf(os.Stderr, "gsbcampaign merge: %v\n", merr)
			return exitFailed
		}
	}
	return report(rep, err, *jsonOut)
}

// mergeTimelines interleaves the shard snapshots' timeline sidecars by
// (sample index, shard) into one campaign-wide NDJSON timeline file.
func mergeTimelines(paths []string, out string) error {
	series := make([][]repro.TimelineRecord, 0, len(paths))
	for _, p := range paths {
		recs, err := repro.ReadTimeline(repro.TimelineSidecarPath(p))
		if err != nil {
			return fmt.Errorf("timeline sidecar of %s: %w", p, err)
		}
		series = append(series, recs)
	}
	merged, err := repro.MergeTimelines(series...)
	if err != nil {
		return err
	}
	if err := repro.WriteTimeline(out, merged); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gsbcampaign: wrote merged timeline %s (%d samples from %d shards)\n", out, len(merged), len(paths))
	return nil
}

// report renders a campaign outcome and picks the exit code.
func report(rep repro.CampaignReport, err error, jsonOut bool) int {
	paused := errors.Is(err, repro.ErrCampaignPaused)
	if jsonOut {
		rec := record{Schema: recordSchema, CampaignReport: rep, Paused: paused}
		if err != nil {
			rec.Error = err.Error()
		}
		b, jerr := json.Marshal(rec)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "gsbcampaign: %v\n", jerr)
			return exitFailed
		}
		fmt.Println(string(b))
	}
	switch {
	case paused:
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "gsbcampaign: %v\n", err)
		}
		return exitPaused
	case err != nil && rep.Done:
		// A finished campaign whose verdict is a violation.
		if !jsonOut {
			fmt.Printf("campaign %s shard %d/%d: VIOLATION after %d schedules\n  %v\n", rep.Mode, rep.Shard, rep.Of, rep.Schedules, err)
		}
		return exitFailed
	case err != nil:
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "gsbcampaign: %v\n", err)
		}
		return exitFailed
	default:
		if !jsonOut {
			fmt.Printf("campaign %s shard %d/%d: %d schedules verified on %s", rep.Mode, rep.Shard, rep.Of, rep.Schedules, rep.Task)
			if rep.Classes > 0 {
				fmt.Printf(" (%d distinct trace classes, %.1f%% coverage)", rep.Classes, 100*rep.Coverage)
			}
			fmt.Println()
		}
		return exitOK
	}
}
