// Command gsbclassify analyzes a symmetric <n,m,l,u>-GSB task: its
// feasibility, kernel set, anchoring, canonical representative,
// communication-free solvability (Theorem 9) and wait-free solvability
// status (Theorems 8-11). With -family it reports the whole <n,m,-,->
// family, and -gcd prints the Theorem 10 arithmetic table.
//
// Usage:
//
//	gsbclassify -n 6 -m 3 -l 1 -u 4
//	gsbclassify -n 6 -m 3 -family
//	gsbclassify -gcd 48
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	n := flag.Int("n", 6, "number of processes")
	m := flag.Int("m", 3, "number of output values")
	l := flag.Int("l", 1, "lower bound per value")
	u := flag.Int("u", 4, "upper bound per value")
	family := flag.Bool("family", false, "classify the whole <n,m,-,-> family")
	gcd := flag.Int("gcd", 0, "print the Theorem 10 gcd table up to this n")
	flag.Parse()

	if *gcd > 0 {
		fmt.Print(repro.GCDTableText(*gcd))
		return
	}
	if *family {
		fmt.Print(repro.SolvabilityText(*n, *m))
		return
	}
	if *n < 1 || *m < 1 || *l < 0 || *u < *l {
		fmt.Fprintln(os.Stderr, "gsbclassify: need n,m >= 1 and 0 <= l <= u")
		os.Exit(2)
	}
	spec := repro.NewSym(*n, *m, *l, *u)
	fmt.Printf("task: %v\n", spec)
	if !spec.Feasible() {
		fmt.Println("  infeasible (Lemma 1: needs m*l <= n <= m*u)")
		return
	}
	ks := spec.KernelSet()
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = k.String()
	}
	fmt.Printf("  kernel set: {%s}\n", strings.Join(parts, ","))
	fmt.Printf("  l-anchored: %v, u-anchored: %v\n", spec.LAnchored(), spec.UAnchored())
	fmt.Printf("  canonical representative: %v\n", spec.Canonical())
	if delta, ok := repro.NoCommBuild(spec); ok {
		fmt.Printf("  communication-free: yes, e.g. delta = %v\n", delta)
	} else {
		fmt.Println("  communication-free: no (Theorem 9)")
	}
	report := repro.Classify(spec)
	fmt.Printf("  wait-free status: %v\n", report.Status)
	fmt.Printf("  reason: %s\n", report.Reason)
}
