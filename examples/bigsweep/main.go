// Big sweep: statistical schedule sampling at sizes no enumerating mode
// can touch. The slot-renaming tree at n=8 has on the order of 10^28
// interleavings — partial-order reduction still leaves more trace
// classes than there are nanoseconds in a year — so instead of
// enumerating, this example verifies seeded batches of sampled
// schedules: a uniform random walk for breadth, then PCT (probabilistic
// concurrency testing) whose d-1 priority-change points catch a depth-d
// ordering bug with probability >= 1/(n*k^(d-1)) per run. Coverage is
// reported as distinct Mazurkiewicz trace classes, and any failing run
// would be replayable from its derived seed alone.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const runs = 1500
	for _, n := range []int{8, 10} {
		spec := repro.Renaming(n, n+1)
		build := func(n int) repro.Solver {
			return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
		}
		fmt.Printf("n=%d: sampling %v, %d runs per mode\n", n, spec, runs)
		for _, mode := range []repro.SampleMode{repro.SampleWalk, repro.SamplePCT} {
			rep, err := repro.SampleVerified(context.Background(), spec, repro.DefaultIDs(n),
				repro.ExploreOptions{SampleRuns: runs, SampleMode: mode, Depth: 3, Seed: 1},
				build)
			if err != nil {
				log.Fatalf("n=%d %v: failing run %d is replayable from seed %d: %v",
					n, mode, rep.FailedRun, rep.FailedSeed, err)
			}
			extra := ""
			if mode == repro.SamplePCT {
				extra = fmt.Sprintf(" (depth %d, %d-step horizon)", rep.Depth, rep.Horizon)
			}
			fmt.Printf("  %-4v %d runs verified, %d distinct trace classes, coverage %.2f%s\n",
				mode, rep.Runs, rep.Classes, rep.Coverage(), extra)
		}
	}

	// The same batch is reproducible at any worker count: the schedule
	// set is a pure function of the seed.
	spec := repro.Renaming(8, 9)
	build := func(n int) repro.Solver {
		return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 1))
	}
	var last repro.SampleReport
	for i, workers := range []int{1, 4} {
		rep, err := repro.SampleVerified(context.Background(), spec, repro.DefaultIDs(8),
			repro.ExploreOptions{Workers: workers, SampleRuns: 400, Seed: 7}, build)
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 && rep != last {
			log.Fatalf("coverage not reproducible across worker counts: %+v vs %+v", rep, last)
		}
		last = rep
	}
	fmt.Printf("reproducibility: %d workers and 1 worker measured identical coverage (%d classes)\n",
		4, last.Classes)
}
