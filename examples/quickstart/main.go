// Quickstart: solve weak symmetry breaking (WSB) among six goroutine
// "processes" in the simulated wait-free shared-memory model, verify the
// output against the <6,2,1,5>-GSB specification, and show how the same
// run behaves under crash injection.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 6
	spec := repro.WSB(n) // <6,2,1,5>-GSB: not all processes decide alike
	fmt.Printf("task: %v (kernel set %v)\n", spec, spec.KernelSet())

	// WSB is wait-free solvable for n = 6 because gcd{C(6,i)} = 1
	// (Theorem 10 territory); here we solve it from a (2n-2)-renaming
	// oracle box, the reduction of Section 5.3.
	build := func(n int) repro.Solver {
		box := repro.NewTaskBox("renaming", repro.Renaming(n, 2*n-2), 42)
		return repro.NewWSBFromRenaming(n, repro.NewBoxSolver(box))
	}

	// Failure-free run under a seeded random schedule.
	res, err := repro.RunVerified(spec, repro.DefaultIDs(n), repro.NewRandomPolicy(42), build)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free outputs: %v (steps: %d)\n", res.Outputs, res.Steps)

	// Same protocol under an adversary that crashes up to n-1 processes.
	build2 := func(n int) repro.Solver {
		box := repro.NewTaskBox("renaming", repro.Renaming(n, 2*n-2), 7)
		return repro.NewWSBFromRenaming(n, repro.NewBoxSolver(box))
	}
	res, err = repro.RunVerified(spec, repro.DefaultIDs(n),
		repro.NewRandomCrashPolicy(7, 0.05, n-1), build2)
	if err != nil {
		log.Fatal(err)
	}
	crashed := 0
	for _, c := range res.Crashed {
		if c {
			crashed++
		}
	}
	fmt.Printf("crashy run outputs:   %v (crashed: %d, still a legal prefix)\n",
		res.Outputs, crashed)

	// The classifier knows why this works for n=6 but not n=8.
	for _, k := range []int{6, 8} {
		report := repro.Classify(repro.WSB(k))
		fmt.Printf("WSB(%d): %v — %s\n", k, report.Status, report.Reason)
	}
}
