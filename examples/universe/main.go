// Universe: a guided tour of the GSB task universe. For a sweep of
// (n, m) families it reports how many tasks are distinct, which are
// trivial / wait-free solvable / provably unsolvable / open, and backs
// the "provably unsolvable" entries at small sizes with bounded-round
// impossibility certificates computed on the spot (IIS protocol complex +
// CDCL decision-map search).
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("The universe of <n,m,-,-> GSB task families")
	fmt.Println()
	fmt.Println("   n  m  feasible  distinct  trivial  solvable  unsolvable  unknown")
	for n := 3; n <= 10; n++ {
		for m := 2; m <= 4; m++ {
			if m > n {
				continue
			}
			family := repro.Family(n, m)
			distinct := len(repro.SynonymClasses(family))
			var trivial, solvable, unsolvable, unknown int
			for _, r := range repro.FamilyReport(n, m) {
				switch r.Status {
				case repro.StatusTrivial:
					trivial++
				case repro.StatusSolvable:
					solvable++
				case repro.StatusNotSolvable:
					unsolvable++
				default:
					unknown++
				}
			}
			fmt.Printf("  %2d %2d  %8d  %8d  %7d  %8d  %10d  %7d\n",
				n, m, len(family), distinct, trivial, solvable, unsolvable, unknown)
		}
	}

	fmt.Println()
	fmt.Println("Landmarks (Section 5):")
	for _, spec := range []repro.Spec{
		repro.Renaming(6, 11),    // trivial
		repro.Renaming(6, 10),    // solvable: gcd prime
		repro.WSB(6),             // solvable
		repro.WSB(8),             // unsolvable: prime power
		repro.PerfectRenaming(6), // universal, unsolvable
		repro.KSlot(8, 3),        // unsolvable via Theorem 10
	} {
		r := repro.Classify(spec)
		fmt.Printf("  %-16s %-26s %s\n", r.Spec, r.Status, r.Reason)
	}

	fmt.Println()
	fmt.Println("Fresh bounded-round impossibility certificates (computed now):")
	for _, c := range []struct {
		label  string
		spec   repro.Spec
		rounds int
	}{
		{"election, n=3", repro.Election(3), 2},
		{"WSB, n=3", repro.WSB(3), 2},
		{"perfect renaming, n=3", repro.PerfectRenaming(3), 2},
		{"election, n=5", repro.Election(5), 1},
	} {
		ok := true
		for r := 0; r <= c.rounds; r++ {
			if repro.BoundedRoundsCheckSAT(c.spec, r) {
				ok = false
			}
		}
		verdict := "no comparison-based protocol exists"
		if !ok {
			verdict = "UNEXPECTED: a protocol exists"
		}
		fmt.Printf("  %-22s rounds 0..%d: %s\n", c.label, c.rounds, verdict)
	}
}
