// Committees: the motivating scenario from the paper's introduction.
// Six people (processes) must each join exactly one of three committees
// with per-committee size bounds — an *asymmetric* GSB task — despite
// asynchrony and crashes. Theorem 8 solves it from perfect renaming: the
// universal construction maps perfect names through a fixed legal
// assignment vector.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 6
	// Committee 1 needs 1-2 members, committee 2 needs 2-3, committee 3
	// takes 1-4.
	spec := repro.NewAsym(n, []int{1, 2, 1}, []int{2, 3, 4})
	fmt.Printf("committee task: %v, feasible: %v\n", spec, spec.Feasible())

	names := []string{"audit", "program", "social"}

	for seed := int64(1); seed <= 3; seed++ {
		// Perfect renaming from a row of test&set objects (the enriched
		// model ASM[test&set]); Theorem 8's construction does the rest.
		build := func(n int) repro.Solver {
			return repro.NewUniversalConstruction(spec, repro.NewTASRenaming("TAS", n))
		}
		res, err := repro.RunVerified(spec, repro.DefaultIDs(n),
			repro.NewRandomPolicy(seed), build)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("schedule %d:\n", seed)
		sizes := make([]int, 3)
		for person, committee := range res.Outputs {
			fmt.Printf("  person %d -> %s\n", person+1, names[committee-1])
			sizes[committee-1]++
		}
		fmt.Printf("  committee sizes: %v (bounds [1..2], [2..3], [1..4])\n", sizes)
	}

	// The same construction handles election (one leader) for free.
	leader := repro.Election(n)
	build := func(n int) repro.Solver {
		return repro.NewUniversalConstruction(leader, repro.NewTASRenaming("TAS", n))
	}
	res, err := repro.RunVerified(leader, repro.DefaultIDs(n), repro.NewRandomPolicy(9), build)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range res.Outputs {
		if v == 1 {
			fmt.Printf("election: process %d is the leader\n", i+1)
		}
	}
}
