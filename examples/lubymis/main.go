// Luby MIS: the classic message-passing symmetry-breaking baselines the
// paper's related-work section points to, running on the synchronous
// rounds substrate: Luby's randomized maximal independent set, randomized
// (Delta+1)-coloring, and deterministic Cole-Vishkin ring 3-coloring
// (O(log* n) rounds). Contrast: these break symmetry with randomness or
// identities in a failure-free synchronous network, while GSB tasks break
// symmetry deterministically against asynchrony and crashes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// Luby MIS on a random graph.
	rng := rand.New(rand.NewSource(11))
	g := repro.GNP(40, 0.15, rng.Float64)
	res, err := repro.LubyMIS(g, 11, 100000)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyMIS(g, res.InMIS); err != nil {
		log.Fatal(err)
	}
	size := 0
	for _, in := range res.InMIS {
		if in {
			size++
		}
	}
	fmt.Printf("Luby MIS on G(40, 0.15): |MIS| = %d, rounds = %d\n", size, res.Rounds)

	// Randomized (Delta+1)-coloring on the same graph.
	col, err := repro.LubyColoring(g, 13, 100000)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyColoring(g, col.Colors, g.MaxDegree()+1); err != nil {
		log.Fatal(err)
	}
	used := map[int]bool{}
	for _, c := range col.Colors {
		used[c] = true
	}
	fmt.Printf("(Delta+1)-coloring: Delta = %d, colors used = %d, rounds = %d\n",
		g.MaxDegree(), len(used), col.Rounds)

	// Deterministic Cole-Vishkin 3-coloring of large rings: round counts
	// grow like log* n.
	fmt.Println("Cole-Vishkin ring 3-coloring (deterministic):")
	for _, n := range []int{8, 64, 4096, 1 << 20} {
		res, err := repro.RingThreeColor(n, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n = %8d: %d rounds\n", n, res.Rounds)
	}
}
