// Slot renaming: the Figure 2 pipeline end-to-end. An (n-1)-slot object
// (the KS oracle of Section 6) assigns n processes to n-1 slots; exactly
// two processes collide, detect it through an atomic snapshot, and order
// themselves onto the reserve names n and n+1 — solving (n+1)-renaming.
// The example sweeps n, runs many adversarial schedules, and reports the
// observed name distributions.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, n := range []int{3, 5, 8} {
		spec := repro.Renaming(n, n+1)
		fmt.Printf("n=%d: solving %v from the (n-1)-slot task\n", n, spec)
		nameUse := make([]int, n+2) // index by name
		const runs = 200
		for seed := int64(0); seed < runs; seed++ {
			build := func(n int) repro.Solver {
				return repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, seed))
			}
			res, err := repro.RunVerified(spec, repro.DefaultIDs(n),
				repro.NewRandomPolicy(seed), build)
			if err != nil {
				log.Fatal(err)
			}
			for _, name := range res.Outputs {
				nameUse[name]++
			}
		}
		fmt.Printf("  name usage over %d runs:", runs)
		for name := 1; name <= n+1; name++ {
			fmt.Printf(" %d:%d", name, nameUse[name])
		}
		fmt.Println()
	}

	// The identity-space reduction of Theorem 1: the same pipeline works
	// with sparse identities from a large space, by renaming into
	// [1..2n-1] first.
	const n = 5
	ids := []int{90210, 7, 1234, 42, 500}
	spec := repro.Renaming(n, n+1)
	build := func(n int) repro.Solver {
		inner := repro.NewSlotRenaming("F2", n, repro.SlotBox("KS", n, n-1, 99))
		return repro.NewIDReducer("T1", n, inner)
	}
	res, err := repro.RunVerified(spec, ids, repro.NewRandomPolicy(99), build)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse ids %v -> names %v (Theorem 1 reduction)\n", ids, res.Outputs)
}
