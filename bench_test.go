// Benchmarks regenerating the paper's artifacts (one benchmark per table
// and figure) plus ablations over the repository's substrates and
// protocol alternatives. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gsb"
	"repro/internal/harness"
	"repro/internal/iis"
	"repro/internal/luby"
	"repro/internal/mem"
	"repro/internal/msgnet"
	"repro/internal/nocomm"
	"repro/internal/sched"
	"repro/internal/solvability"
	"repro/internal/tasks"
	"repro/internal/topology"
	"repro/internal/universal"
)

// BenchmarkTable1 regenerates Table 1 (kernel sets, synonym classes and
// canonical flags of the <n,m,-,-> family); the paper's instance is n=6,
// m=3, and larger instances probe the kernel enumeration's scaling.
func BenchmarkTable1(b *testing.B) {
	for _, tc := range []struct{ n, m int }{{6, 3}, {12, 4}, {20, 5}} {
		b.Run(fmt.Sprintf("n=%d/m=%d", tc.n, tc.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if out := harness.Table1(tc.n, tc.m); len(out) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkFigure1 regenerates Figure 1 (canonical representatives and
// the strict-inclusion Hasse diagram).
func BenchmarkFigure1(b *testing.B) {
	for _, tc := range []struct{ n, m int }{{6, 3}, {10, 3}, {12, 4}} {
		b.Run(fmt.Sprintf("n=%d/m=%d", tc.n, tc.m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reps := gsb.CanonicalFamily(tc.n, tc.m)
				if len(gsb.Hasse(reps)) == 0 && len(reps) > 1 {
					b.Fatal("no Hasse edges")
				}
			}
		})
	}
}

// BenchmarkFigure2 runs the Figure 2 algorithm ((n+1)-renaming from the
// (n-1)-slot task) under seeded random schedules across system sizes.
func BenchmarkFigure2(b *testing.B) {
	for _, n := range []int{3, 5, 8, 12} {
		spec := gsb.Renaming(n, n+1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				_, err := tasks.RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
					func(n int) tasks.Solver {
						return tasks.NewSlotRenaming("F2", n, mem.SlotBox("KS", n, n-1, seed))
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreSchedules measures the exhaustive schedule-exploration
// engine on the <6,3,-,-> family: a budget-bounded walk of the schedule
// tree of the hardest member solved via the Theorem 8 universal
// construction, comparing the sequential depth-first baseline against the
// work-stealing engine at increasing worker counts. On multi-core hosts
// the workers=4/8 rows show the wall-clock speedup of parallel stateless
// re-execution; single-core hosts show that the engine adds no overhead.
func BenchmarkExploreSchedules(b *testing.B) {
	spec := gsb.Hardest(6, 3)
	const budget = 256
	n := spec.N()
	build := func() sched.Body {
		return tasks.Body(universal.New(spec, tasks.NewTASRenaming("TAS", n)))
	}
	check := func(res *sched.Result) error {
		out, err := res.DecidedVector()
		if err != nil {
			return err
		}
		return spec.Verify(out)
	}
	exhaust := func(b *testing.B, count int, err error) {
		b.Helper()
		if err != nil && !errors.Is(err, sched.ErrExplorationBudget) {
			b.Fatal(err)
		}
		if count != budget {
			b.Fatalf("explored %d schedules, want the full budget %d", count, budget)
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count, err := sched.ExploreSequential(n, sched.DefaultIDs(n), budget, 1<<20, build, check)
			exhaust(b, count, err)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				count, err := sched.Explore(context.Background(), n, sched.DefaultIDs(n),
					sched.ExploreOptions{Workers: workers, MaxRuns: budget, MaxSteps: 1 << 20}, build, check)
				exhaust(b, count, err)
			}
		})
	}
	// The same budgeted walk with partial-order reduction: the budget now
	// bounds executed runs (schedules plus pruned probes), so the row
	// measures the per-run overhead of the sleep-set machinery.
	b.Run("por/workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := sched.Explore(context.Background(), n, sched.DefaultIDs(n),
				sched.ExploreOptions{Workers: 1, MaxRuns: budget, MaxSteps: 1 << 20, Reduction: sched.ReductionSleepSets}, build, check)
			if err != nil && !errors.Is(err, sched.ErrExplorationBudget) {
				b.Fatal(err)
			}
		}
	})

	// Reduction-factor rows: full explorations that only complete because
	// of the reduction. The Theorem 8 oracle-box protocol for the hardest
	// <n,3> member takes exactly 2 steps per process (box invoke, decide),
	// so the exhaustive tree is the exact multinomial (2n)!/2^n while the
	// reduced walk visits one schedule per order of the n conflicting box
	// invocations — n! trace classes. At <6,3> that is a 10395x reduction;
	// the <7,3> instance (681,080,400 schedules) is newly reachable: no
	// worker count finishes it exhaustively, reduction explores it
	// completely in seconds.
	for _, bn := range []int{6, 7} {
		bn := bn
		b.Run(fmt.Sprintf("reduction-factor/box-%d-3", bn), func(b *testing.B) {
			bspec := gsb.Hardest(bn, 3)
			bbuild := func() sched.Body {
				return tasks.Body(tasks.NewBoxSolver(mem.NewTaskBox("B", bspec, 1)))
			}
			bcheck := func(res *sched.Result) error {
				out, err := res.DecidedVector()
				if err != nil {
					return err
				}
				return bspec.Verify(out)
			}
			exhaustive := 1 // (2n)!/2^n interleavings of n 2-step processes
			for i := 2; i <= 2*bn; i++ {
				exhaustive *= i
			}
			for i := 0; i < bn; i++ {
				exhaustive /= 2
			}
			classes := 1 // n! orders of the conflicting box invocations
			for i := 2; i <= bn; i++ {
				classes *= i
			}
			var count int
			for i := 0; i < b.N; i++ {
				var err error
				count, err = sched.Explore(context.Background(), bn, sched.DefaultIDs(bn),
					sched.ExploreOptions{MaxRuns: 1 << 22, Reduction: sched.ReductionSleepSets}, bbuild, bcheck)
				if err != nil {
					b.Fatal(err)
				}
				if count != classes {
					b.Fatalf("reduced exploration visited %d schedules, want %d trace classes", count, classes)
				}
			}
			b.ReportMetric(float64(exhaustive)/float64(count), "reduction_x")
		})
	}
}

// BenchmarkExploreCrashSweep measures the randomized crash-injection
// sweep mode of the exploration engine on the <6,3,-,-> family hardest
// member, across worker counts.
func BenchmarkExploreCrashSweep(b *testing.B) {
	spec := gsb.Hardest(6, 3)
	const sweeps = 256
	n := spec.N()
	build := func(n int) tasks.Solver {
		return universal.New(spec, tasks.NewTASRenaming("TAS", n))
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				count, err := tasks.ExploreVerified(context.Background(), spec, sched.DefaultIDs(n),
					sched.ExploreOptions{Workers: workers, CrashRuns: sweeps, CrashProb: 0.02, Seed: int64(i)}, build)
				if err != nil {
					b.Fatal(err)
				}
				if count != sweeps {
					b.Fatalf("swept %d runs, want %d", count, sweeps)
				}
			}
		})
	}
}

// BenchmarkRenamingProtocols compares the two from-scratch wait-free
// renaming algorithms: the adaptive snapshot-based (2n-1)-renaming and
// the Moir-Anderson splitter grid (n(n+1)/2 names) — smaller name space
// versus cheaper steps.
func BenchmarkRenamingProtocols(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("snapshot2n-1/n=%d", n), func(b *testing.B) {
			spec := gsb.Renaming(n, 2*n-1)
			for i := 0; i < b.N; i++ {
				_, err := tasks.RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(int64(i)),
					func(n int) tasks.Solver { return tasks.NewSnapshotRenaming("R", n) })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			spec := gsb.Renaming(n, n*(n+1)/2)
			for i := 0; i < b.N; i++ {
				_, err := tasks.RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(int64(i)),
					func(n int) tasks.Solver { return tasks.NewGridRenaming("G", n) })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotConstruction compares the native one-step snapshot
// with the Afek et al. wait-free construction from 1WnR registers
// (substrate ablation: what the "snapshots are free" assumption costs).
func BenchmarkSnapshotConstruction(b *testing.B) {
	const n, rounds = 4, 2
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			arr := mem.NewArray[int]("A", n)
			r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(int64(i)))
			_, err := r.Run(func(p *sched.Proc) {
				for k := 0; k < rounds; k++ {
					arr.Write(p, k)
					arr.Snapshot(p)
				}
				p.Decide(1)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("afek", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap := mem.NewSnapshotObject[int]("S", n)
			r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(int64(i)),
				sched.WithMaxSteps(1<<20))
			_, err := r.Run(func(p *sched.Proc) {
				for k := 0; k < rounds; k++ {
					snap.Update(p, k)
					snap.Scan(p)
				}
				p.Decide(1)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkImmediateSnapshot measures the Borowsky-Gafni levels protocol.
func BenchmarkImmediateSnapshot(b *testing.B) {
	for _, n := range []int{3, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				is := iis.New[int]("IS", n)
				r := sched.NewRunner(n, sched.DefaultIDs(n), sched.NewRandom(int64(i)),
					sched.WithMaxSteps(1<<20))
				_, err := r.Run(func(p *sched.Proc) {
					is.Invoke(p, p.ID())
					p.Decide(1)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUniversality runs the Theorem 8 construction: an arbitrary GSB
// task (here the hardest <n,m,-,-> member) from perfect renaming.
func BenchmarkUniversality(b *testing.B) {
	for _, tc := range []struct{ n, m int }{{6, 3}, {9, 4}} {
		spec := gsb.Hardest(tc.n, tc.m)
		b.Run(spec.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := tasks.RunVerified(spec, sched.DefaultIDs(tc.n), sched.NewRandom(int64(i)),
					func(n int) tasks.Solver {
						return universal.New(spec, tasks.NewTASRenaming("TAS", n))
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWSBRenamingEquivalence runs the round trip WSB -> (2n-2)-
// renaming -> WSB (Section 5.3 / Section 6 equivalence).
func BenchmarkWSBRenamingEquivalence(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		spec := gsb.WSB(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				_, err := tasks.RunVerified(spec, sched.DefaultIDs(n), sched.NewRandom(seed),
					func(n int) tasks.Solver {
						ren := tasks.NewRenamingFromWSB("RW", n, mem.WSBBox("WSB", n, seed))
						return tasks.NewWSBFromRenaming(n, ren)
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNoCommSearch measures the Theorem 9 machinery: the closed-form
// characterization, the constructive solver, and the exhaustive
// subset verification.
func BenchmarkNoCommSearch(b *testing.B) {
	b.Run("characterize/n=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for m := 1; m <= 15; m++ {
				for u := 1; u <= 8; u++ {
					nocomm.Solvable(gsb.NewSym(8, m, 0, u))
				}
			}
		}
	})
	b.Run("build+verify/n=8", func(b *testing.B) {
		spec := gsb.BoundedHomonymous(8, 3)
		for i := 0; i < b.N; i++ {
			delta, ok := nocomm.Build(spec)
			if !ok {
				b.Fatal("unexpectedly unsolvable")
			}
			if err := nocomm.Verify(spec, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive-verify/n=6", func(b *testing.B) {
		spec := gsb.BoundedHomonymous(6, 3)
		delta, _ := nocomm.Build(spec)
		for i := 0; i < b.N; i++ {
			if err := nocomm.VerifyExhaustive(spec, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGCDClassification tabulates the Theorem 10 condition.
func BenchmarkGCDClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := solvability.GCDTable(48)
		if len(rows) != 47 {
			b.Fatal("wrong table size")
		}
	}
}

// BenchmarkElectionCertificate builds the IIS protocol complex and
// exhausts the decision-map search certifying Theorem 11.
func BenchmarkElectionCertificate(b *testing.B) {
	for _, tc := range []struct{ n, r int }{{2, 2}, {3, 1}, {3, 2}, {4, 1}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", tc.n, tc.r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := topology.BuildIIS(tc.n, tc.r)
				if c.FindDecisionMap(gsb.Election(tc.n)) != nil {
					b.Fatal("election map found; contradicts Theorem 11")
				}
			}
		})
	}
}

// BenchmarkWSBCertificateCDCL measures the CDCL-backed exhaustive search
// on the instance chronological backtracking cannot finish (WSB at n=3,
// rounds=2), plus the n=4 one-round instance for comparison.
func BenchmarkWSBCertificateCDCL(b *testing.B) {
	for _, tc := range []struct{ n, r int }{{3, 2}, {4, 1}} {
		b.Run(fmt.Sprintf("n=%d/r=%d", tc.n, tc.r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := topology.BuildIIS(tc.n, tc.r)
				if c.FindDecisionMapSAT(gsb.WSB(tc.n)) != nil {
					b.Fatal("WSB map found; contradicts Theorem 10")
				}
			}
		})
	}
}

// BenchmarkLubyMIS measures the message-passing MIS baseline.
func BenchmarkLubyMIS(b *testing.B) {
	for _, n := range []int{32, 128} {
		rng := rand.New(rand.NewSource(1))
		g := msgnet.GNP(n, 0.1, rng.Float64)
		b.Run(fmt.Sprintf("gnp%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := luby.MIS(g, int64(i), 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				if err := luby.VerifyMIS(g, res.InMIS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColeVishkin measures deterministic ring 3-coloring.
func BenchmarkColeVishkin(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("ring%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := luby.RingThreeColor(n, 1000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCanonicalization measures Theorem 7's fixed-point computation
// against the brute-force synonym classification it replaces.
func BenchmarkCanonicalization(b *testing.B) {
	b.Run("fixed-point/n=20", func(b *testing.B) {
		family := gsb.Family(20, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range family {
				s.Canonical()
			}
		}
	})
	b.Run("synonym-classes/n=20", func(b *testing.B) {
		family := gsb.Family(20, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gsb.SynonymClasses(family)
		}
	})
}
