GO ?= go

.PHONY: all build test race bench bench-compare lint vet-gsb staticcheck govulncheck check fmt fuzz-smoke

# Pinned external tool versions. CI installs exactly these; bump them
# deliberately (update here AND in .github/workflows/ci.yml, run
# `make check`, and mention the bump in the PR) rather than floating on
# @latest, so a tool release can never break or reinterpret the tree
# without a reviewed diff.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

all: build lint test

# check is the single local entry point mirroring CI: build, vet/gofmt,
# the project's own analyzers (gsbvet, built from the tree — never
# skipped), external static analysis (skipped with a notice when the
# tools are not installed), vulnerability scan, tests. CI runs the same
# make targets.
check: build lint vet-gsb staticcheck govulncheck test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Benchmark smoke: compile and execute every benchmark once, then emit
# the machine-readable exploration report (schedule counts, runs/sec,
# partial-order-reduction factors) tracked across PRs. This regenerates
# the committed baseline BENCH_sched.json and the per-entry pprof CPU
# profiles under profiles/ (docs/metrics.md).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/gsbbench -out BENCH_sched.json -profiles profiles

# Benchmark regression gate: measure into BENCH_ci.json and fail on
# throughput drops (>25%), allocs-per-run growth, or schedule/class count
# drift against the committed BENCH_sched.json baseline. CI's bench-smoke
# job runs this; regenerate the baseline with `make bench` when a change
# legitimately moves the numbers. Baseline policy: the schedule/class and
# allocs columns are machine-independent and gate hard; runs/sec is
# environmental, so regenerate the baseline on a machine no faster than
# the CI runners (a slower box only loosens the throughput gate, never
# tightens it) or raise -max-drop when runners change generation.
# The gate run writes its own profiles into profiles-ci/ (not committed;
# CI uploads them as an artifact so a caught regression ships with the
# profile that explains it).
bench-compare:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/gsbbench -out BENCH_ci.json -compare BENCH_sched.json -profiles profiles-ci

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

# gsbvet: the project's own analyzer suite (internal/lint,
# docs/static-analysis.md) — determinism, optionshash, statefield,
# hotpath, statshandle, annotations. Builds from the tree, needs no
# network, and is never skipped.
vet-gsb:
	$(GO) run ./cmd/gsbvet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Short native-fuzzing smoke over the campaign snapshot decoders: each
# target runs for a few seconds (CI's static-analysis job runs the same),
# catching parser panics early. For a real session:
#   go test ./internal/campaign -fuzz FuzzDecodeSnapshot -fuzztime 5m
fuzz-smoke:
	$(GO) test ./internal/campaign -run '^$$' -fuzz FuzzParseHeader -fuzztime 10s
	$(GO) test ./internal/campaign -run '^$$' -fuzz FuzzDecodeSnapshot -fuzztime 10s

fmt:
	gofmt -w .
