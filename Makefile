GO ?= go

.PHONY: all build test race bench bench-compare lint staticcheck govulncheck check fmt

all: build lint test

# check is the single local entry point mirroring CI: build, vet/gofmt,
# static analysis (skipped with a notice when the tools are not
# installed), vulnerability scan, tests. CI runs the same make targets.
check: build lint staticcheck govulncheck test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Benchmark smoke: compile and execute every benchmark once, then emit
# the machine-readable exploration report (schedule counts, runs/sec,
# partial-order-reduction factors) tracked across PRs. This regenerates
# the committed baseline BENCH_sched.json and the per-entry pprof CPU
# profiles under profiles/ (docs/metrics.md).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/gsbbench -out BENCH_sched.json -profiles profiles

# Benchmark regression gate: measure into BENCH_ci.json and fail on
# throughput drops (>25%), allocs-per-run growth, or schedule/class count
# drift against the committed BENCH_sched.json baseline. CI's bench-smoke
# job runs this; regenerate the baseline with `make bench` when a change
# legitimately moves the numbers. Baseline policy: the schedule/class and
# allocs columns are machine-independent and gate hard; runs/sec is
# environmental, so regenerate the baseline on a machine no faster than
# the CI runners (a slower box only loosens the throughput gate, never
# tightens it) or raise -max-drop when runners change generation.
# The gate run writes its own profiles into profiles-ci/ (not committed;
# CI uploads them as an artifact so a caught regression ships with the
# profile that explains it).
bench-compare:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/gsbbench -out BENCH_ci.json -compare BENCH_sched.json -profiles profiles-ci

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

fmt:
	gofmt -w .
