GO ?= go

.PHONY: all build test race bench lint fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Benchmark smoke: compile and execute every benchmark once, then emit
# the machine-readable exploration report (schedule counts, runs/sec,
# partial-order-reduction factors) tracked across PRs.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/gsbbench -out BENCH_sched.json

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .
